package platform

import (
	"context"
	"fmt"
	"sync"

	"catalyzer/internal/admission"
	"catalyzer/internal/faults"
	"catalyzer/internal/simtime"
)

// RecoveryConfig tunes the platform's failure-recovery machinery: the
// per-stage retry budget with virtual-time backoff, the per-function ×
// per-stage circuit breakers, and template quarantine.
type RecoveryConfig struct {
	// MaxRetries is how many times a failed stage is retried (after its
	// first attempt) before falling to the next stage.
	MaxRetries int
	// BackoffBase is the virtual-time backoff charged before the first
	// retry; each further retry doubles it.
	BackoffBase simtime.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// stage's circuit breaker.
	BreakerThreshold int
	// BreakerCooldown is the virtual time an open breaker waits before
	// half-opening to admit a probe.
	BreakerCooldown simtime.Duration
	// QuarantineThreshold is the consecutive sfork-failure count after
	// which a function's template is quarantined and rebuilt.
	QuarantineThreshold int
}

// DefaultRecoveryConfig returns the platform defaults: one retry with a
// 200µs base backoff, breakers opening after 3 consecutive failures and
// cooling down for 50ms of virtual time, and template quarantine after 3
// consecutive sfork failures.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{
		MaxRetries:          1,
		BackoffBase:         200 * simtime.Microsecond,
		BreakerThreshold:    3,
		BreakerCooldown:     50 * simtime.Millisecond,
		QuarantineThreshold: 3,
	}
}

// FailureStats is the recovery section of the platform's accounting:
// everything the failure machinery did on behalf of traffic.
type FailureStats struct {
	// BootFailures counts raw stage failures, by stage.
	BootFailures map[System]int
	// Fallbacks counts boots served by a stage other than the one
	// requested, keyed by the stage that served.
	Fallbacks map[System]int
	// Retries counts same-stage retry attempts.
	Retries int
	// BackoffTotal is the virtual time spent backing off before retries.
	BackoffTotal simtime.Duration
	// BreakerTrips counts breaker open transitions; BreakerSkips counts
	// chain stages skipped because their breaker was open.
	BreakerTrips int
	BreakerSkips int
	// TemplatesQuarantined counts template quarantine-and-rebuild
	// events; TemplateRebuildFailures counts rebuilds that themselves
	// failed (leaving the function without a template).
	TemplatesQuarantined    int
	TemplateRebuildFailures int
	// WatchdogKills counts hung invocations the supervisor's watchdog
	// killed and reaped.
	WatchdogKills int
	// TemplatesPoisoned counts poisoning verdicts: templates convicted by
	// correlated failures of their sforked children (each also counts in
	// TemplatesQuarantined). TemplateRegens / TemplateRegenFailures count
	// the asynchronous template rebuilds the supervisor runs after a
	// poisoning verdict or a wedged-template eviction.
	TemplatesPoisoned     int
	TemplateRegens        int
	TemplateRegenFailures int
	// ImagesQuarantined counts corrupt stored func-images moved aside;
	// ImageLoadFaults counts store fetches that failed without evidence
	// of corruption (rebuilt, not quarantined).
	ImagesQuarantined int
	ImageLoadFaults   int
	// Rollbacks counts corrupt active generations served from the
	// last-known-good generation instead (rebuild off the critical
	// path). ImageRebuilds / ImageRebuildFailures count those
	// off-critical-path rebuilds; ImageSaveFailures counts store
	// persists that failed (the in-memory image kept serving).
	Rollbacks            int
	ImageRebuilds        int
	ImageRebuildFailures int
	ImageSaveFailures    int
	// Durability counters merged from the image store's startup scrub:
	// temp/stale files swept, divergences healed without data loss, and
	// artifacts quarantined as corrupt. Zero without a store.
	OrphansSwept     int
	ScrubRepaired    int
	ScrubQuarantined int
	// Exhausted counts invocations whose whole fallback chain failed.
	Exhausted int
	// Aborted counts invocations whose fallback chain was cut short by
	// the caller's context (deadline or cancellation) mid-chain.
	Aborted int
	// MemoryReclaims counts boots that relieved memory pressure by
	// reclaiming instead of failing; KeepWarmEvictions and
	// TemplatesRetired break down what was freed (keep-warm instances
	// evicted, idle templates retired LRU-first).
	MemoryReclaims    int
	KeepWarmEvictions int
	TemplatesRetired  int
}

func newFailureStats() FailureStats {
	return FailureStats{
		BootFailures: make(map[System]int),
		Fallbacks:    make(map[System]int),
	}
}

// clone deep-copies the stats for surfacing.
func (s FailureStats) clone() FailureStats {
	out := s
	out.BootFailures = make(map[System]int, len(s.BootFailures))
	for k, v := range s.BootFailures {
		out.BootFailures[k] = v
	}
	out.Fallbacks = make(map[System]int, len(s.Fallbacks))
	for k, v := range s.Fallbacks {
		out.Fallbacks[k] = v
	}
	return out
}

// brKey identifies one circuit breaker: a function × boot-stage pair.
type brKey struct {
	fn  string
	sys System
}

// recovery is the platform's failure-recovery state, guarded by its own
// mutex so breaker checks and failure accounting never contend with (or
// deadlock against) the machine lock. Lock ordering: the machine lock
// may be taken before mu (stats from boot paths), but mu must NEVER be
// held while acquiring the machine lock — breakers read virtual time
// through the atomic clock, so they never need it.
type recovery struct {
	mu         sync.Mutex
	cfg        RecoveryConfig
	breakers   map[brKey]*faults.Breaker
	sforkFails map[string]int // consecutive sfork failures per function
	stats      FailureStats
}

func newRecovery() *recovery {
	return &recovery{
		cfg:        DefaultRecoveryConfig(),
		breakers:   make(map[brKey]*faults.Breaker),
		sforkFails: make(map[string]int),
		stats:      newFailureStats(),
	}
}

// addStats applies a mutation to the failure accounting under mu.
func (r *recovery) addStats(f func(*FailureStats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// breaker returns (lazily creating) the breaker guarding fn × sys
// (r.mu held).
func (r *recovery) breaker(m interface{ Now() simtime.Duration }, fn string, sys System) *faults.Breaker {
	k := brKey{fn, sys}
	b, ok := r.breakers[k]
	if !ok {
		b = faults.NewBreaker(r.cfg.BreakerThreshold, r.cfg.BreakerCooldown, m.Now)
		r.breakers[k] = b
	}
	return b
}

// SetRecoveryConfig replaces the recovery tuning. Existing breakers are
// dropped (they would carry stale thresholds).
func (p *Platform) SetRecoveryConfig(cfg RecoveryConfig) {
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BreakerThreshold < 1 {
		cfg.BreakerThreshold = 1
	}
	if cfg.QuarantineThreshold < 1 {
		cfg.QuarantineThreshold = 1
	}
	p.rec.mu.Lock()
	defer p.rec.mu.Unlock()
	p.rec.cfg = cfg
	p.rec.breakers = make(map[brKey]*faults.Breaker)
}

// RecoveryConfig returns the active recovery tuning.
func (p *Platform) RecoveryConfig() RecoveryConfig {
	p.rec.mu.Lock()
	defer p.rec.mu.Unlock()
	return p.rec.cfg
}

// FailureStats returns a copy of the recovery accounting, with the
// image store's durability counters folded in.
func (p *Platform) FailureStats() FailureStats {
	p.rec.mu.Lock()
	out := p.rec.stats.clone()
	p.rec.mu.Unlock()
	if p.store != nil {
		st := p.store.Stats()
		out.OrphansSwept = st.OrphansSwept
		out.ScrubRepaired = st.ScrubRepaired
		out.ScrubQuarantined = st.ScrubQuarantined
	}
	return out
}

// BreakerStates reports every instantiated breaker's state, keyed
// "function/system".
func (p *Platform) BreakerStates() map[string]string {
	p.rec.mu.Lock()
	defer p.rec.mu.Unlock()
	out := make(map[string]string, len(p.rec.breakers))
	for k, b := range p.rec.breakers {
		out[k.fn+"/"+string(k.sys)] = b.State().String()
	}
	return out
}

// fallbackChain orders the stages a requested strategy degrades through:
// sfork → Zygote → Catalyzer-restore → gVisor cold. Baselines have no
// fallback — they are themselves the last resort.
func fallbackChain(sys System) []System {
	switch sys {
	case CatalyzerSfork:
		return []System{CatalyzerSfork, CatalyzerZygote, CatalyzerRestore, GVisor}
	case CatalyzerZygote:
		return []System{CatalyzerZygote, CatalyzerRestore, GVisor}
	case CatalyzerRestore:
		return []System{CatalyzerRestore, GVisor}
	default:
		return []System{sys}
	}
}

// chargeBackoff charges retry backoff as virtual time under the machine
// lock (virtual time only advances while machine work is serialized).
func (p *Platform) chargeBackoff(d simtime.Duration) {
	p.mu.Lock()
	p.M.Env.Charge(d)
	p.mu.Unlock()
}

// abortChain wraps the caller's context error into a typed mid-chain
// abort: errors.Is still sees ErrDeadlineExceeded / ErrCanceled (and the
// underlying context error) through the wrap.
func (p *Platform) abortChain(name string, sys System, attempts int, cerr error) error {
	p.rec.addStats(func(s *FailureStats) { s.Aborted++ })
	return fmt.Errorf("platform: boot %s via %s aborted mid-chain after %d attempts: %w",
		name, sys, attempts, cerr)
}

// BootRecover boots an instance through the failure-recovery machinery:
// the requested stage is tried first (with per-stage retries and
// virtual-time backoff), each failing stage degrades to the next stage
// of the fallback chain, stages whose circuit breaker is open are
// skipped, and repeated sfork failures quarantine and rebuild the
// template. With nothing failing it performs exactly the work of Boot —
// the happy path charges no extra virtual time.
//
// ctx bounds the whole chain: it is consulted before each stage and
// before each retry, and an expired or canceled context aborts the chain
// with a typed error (admission.ErrDeadlineExceeded / ErrCanceled). A
// boot already in flight is never interrupted mid-stage — the abort
// points sit between stages, where no instance is half-built.
func (p *Platform) BootRecover(ctx context.Context, name string, sys System) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := p.Lookup(name); err != nil {
		return nil, err
	}
	// Crash-loop gate: a parked function is refused before any machine
	// work, so a crash-looping function cannot occupy boot capacity.
	if err := p.sup.Allow(name); err != nil {
		return nil, fmt.Errorf("platform: boot %s: %w", name, err)
	}
	// Run due supervision probes on the way out — after this invocation's
	// latency has been measured, never inside it.
	defer p.sup.Poll()
	r := p.rec
	be := &BootError{Function: name, Requested: sys}
	attempts := 0
	for _, stage := range fallbackChain(sys) {
		if cerr := admission.CtxErr(ctx); cerr != nil {
			return nil, p.abortChain(name, sys, attempts, cerr)
		}
		r.mu.Lock()
		br := r.breaker(p.M, name, stage)
		if !br.Allow() {
			r.stats.BreakerSkips++
			r.mu.Unlock()
			be.Skipped = append(be.Skipped, stage)
			continue
		}
		r.mu.Unlock()
		for attempt := 0; ; attempt++ {
			res, err := p.Boot(name, stage)
			attempts++
			if err == nil {
				r.mu.Lock()
				br.Success()
				if stage == CatalyzerSfork {
					delete(r.sforkFails, name)
				}
				// res.System may differ from stage already (Zygote pool
				// miss degrades to restore inside Boot).
				if res.System != sys {
					r.stats.Fallbacks[res.System]++
				}
				r.mu.Unlock()
				return res, nil
			}
			if isPrecondition(err) {
				// Artifact missing: the stage cannot work until prepared.
				// Skip it without charging its breaker.
				be.Attempts = append(be.Attempts, Attempt{System: stage, Err: err})
				break
			}
			r.mu.Lock()
			trips := br.Trips()
			br.Failure()
			r.stats.BootFailures[stage]++
			r.stats.BreakerTrips += br.Trips() - trips
			mayRetry := attempt < r.cfg.MaxRetries && br.State() == faults.BreakerClosed
			backoff := r.cfg.BackoffBase << attempt
			r.mu.Unlock()
			if stage == CatalyzerSfork {
				p.noteSforkFailure(name)
			}
			a := Attempt{System: stage, Err: err}
			if mayRetry {
				if cerr := admission.CtxErr(ctx); cerr != nil {
					be.Attempts = append(be.Attempts, a)
					return nil, p.abortChain(name, sys, attempts, cerr)
				}
				a.Backoff = backoff
				p.chargeBackoff(backoff)
				r.addStats(func(s *FailureStats) {
					s.Retries++
					s.BackoffTotal += backoff
				})
				be.Attempts = append(be.Attempts, a)
				continue
			}
			be.Attempts = append(be.Attempts, a)
			break
		}
	}
	r.addStats(func(s *FailureStats) { s.Exhausted++ })
	return nil, be
}

// noteSforkFailure counts a consecutive sfork failure for the function;
// at the quarantine threshold the template is presumed wedged, retired,
// and rebuilt offline. A rebuild failure leaves the function without a
// template (subsequent fork boots degrade via ErrNoTemplate until a
// PrepareTemplate succeeds).
func (p *Platform) noteSforkFailure(name string) {
	f, err := p.Lookup(name)
	if err != nil {
		return
	}
	r := p.rec
	r.mu.Lock()
	r.sforkFails[name]++
	if r.sforkFails[name] < r.cfg.QuarantineThreshold {
		r.mu.Unlock()
		return
	}
	r.sforkFails[name] = 0
	r.mu.Unlock()
	// Quarantine and rebuild under the machine lock (template work is
	// machine work); stats afterwards under the recovery mutex.
	p.mu.Lock()
	if f.Tmpl == nil {
		p.mu.Unlock()
		return
	}
	rebuildFailed := false
	if err := f.Tmpl.Refresh(); err != nil {
		f.Tmpl.Retire()
		f.Tmpl = nil
		rebuildFailed = true
	} else {
		f.tmplUse = p.M.Now()
	}
	p.mu.Unlock()
	r.addStats(func(s *FailureStats) {
		s.TemplatesQuarantined++
		if rebuildFailed {
			s.TemplateRebuildFailures++
		}
	})
}

// InvokeRecover is Invoke through the recovery machinery: boot with
// fallback (bounded by ctx), execute one request, release the instance.
func (p *Platform) InvokeRecover(ctx context.Context, name string, sys System) (*Result, error) {
	r, err := p.BootRecover(ctx, name, sys)
	if err != nil {
		return nil, err
	}
	defer p.ReleaseSandbox(r.Sandbox)
	if cerr := admission.CtxErr(ctx); cerr != nil {
		return nil, p.abortChain(name, sys, 1, cerr)
	}
	d, err := p.executeWatched(name, r.Sandbox)
	if err != nil {
		p.noteExecFailure(name, r.Sandbox)
		return nil, fmt.Errorf("platform: execute %s: %w", name, err)
	}
	p.sup.NoteSuccess(name)
	r.ExecLatency = d
	return r, nil
}

// InvokeKeepRecover boots with fallback (bounded by ctx) and executes
// but keeps the instance running, returning it in the result.
func (p *Platform) InvokeKeepRecover(ctx context.Context, name string, sys System) (*Result, error) {
	r, err := p.BootRecover(ctx, name, sys)
	if err != nil {
		return nil, err
	}
	if cerr := admission.CtxErr(ctx); cerr != nil {
		p.ReleaseSandbox(r.Sandbox)
		return nil, p.abortChain(name, sys, 1, cerr)
	}
	d, err := p.executeWatched(name, r.Sandbox)
	if err != nil {
		p.ReleaseSandbox(r.Sandbox)
		p.noteExecFailure(name, r.Sandbox)
		return nil, fmt.Errorf("platform: execute %s: %w", name, err)
	}
	p.sup.NoteSuccess(name)
	r.ExecLatency = d
	return r, nil
}

// Close releases the platform's long-lived per-function artifacts: every
// template sandbox is retired and every base memory mapping closed.
// Deployed functions stay registered; re-preparing them rebuilds the
// artifacts. After Close (and the release of any kept instances) the
// machine reports zero live sandboxes.
func (p *Platform) Close() {
	// Stop the supervisor first: after this no probe fires, no new
	// self-healing task starts, and every in-flight template regen,
	// pool refill and off-critical-path image rebuild has drained (all
	// run under the supervisor's tracked Go and take the machine lock,
	// so this must happen before we do).
	p.sup.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.registeredFunctions() {
		if f.Tmpl != nil {
			f.Tmpl.Retire()
			f.Tmpl = nil
		}
		if f.Mapping != nil {
			f.Mapping.Close()
			f.Mapping = nil
		}
	}
}
