package platform

import (
	"context"
	"errors"
	"os"
	"testing"

	"catalyzer/internal/costmodel"
	"catalyzer/internal/faults"
	"catalyzer/internal/image"
	"catalyzer/internal/simtime"
)

// preparedPlatform returns a platform with c-hello fully prepared (image
// + template) and a fault injector installed.
func preparedPlatform(t *testing.T, seed int64) *Platform {
	t.Helper()
	p := New(costmodel.Default())
	p.M.Faults = faults.New(seed)
	if _, err := p.PrepareTemplate("c-hello"); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestHappyPathIdenticalToRawBoot(t *testing.T) {
	// With no faults armed, BootRecover must charge exactly the virtual
	// time Boot charges: the fallback chain adds no work to the happy
	// path.
	for _, sys := range []System{CatalyzerSfork, CatalyzerZygote, CatalyzerRestore} {
		raw := New(costmodel.Default())
		if _, err := raw.PrepareTemplate("c-hello"); err != nil {
			t.Fatal(err)
		}
		rec := New(costmodel.Default())
		if _, err := rec.PrepareTemplate("c-hello"); err != nil {
			t.Fatal(err)
		}
		r1, err := raw.Boot("c-hello", sys)
		if err != nil {
			t.Fatalf("%s: raw boot: %v", sys, err)
		}
		r2, err := rec.BootRecover(context.Background(), "c-hello", sys)
		if err != nil {
			t.Fatalf("%s: recovered boot: %v", sys, err)
		}
		if r1.BootLatency != r2.BootLatency {
			t.Fatalf("%s: recovery changed happy-path latency: raw %v vs recover %v",
				sys, r1.BootLatency, r2.BootLatency)
		}
		r1.Sandbox.Release()
		r2.Sandbox.Release()
	}
}

func TestFallbackServesWhenSforkFails(t *testing.T) {
	p := preparedPlatform(t, 11)
	p.M.Faults.Arm(faults.SiteSfork, 1)

	r, err := p.BootRecover(context.Background(), "c-hello", CatalyzerSfork)
	if err != nil {
		t.Fatalf("fallback chain failed: %v", err)
	}
	defer r.Sandbox.Release()
	if r.System == CatalyzerSfork {
		t.Fatal("rate-1 sfork fault still served by sfork")
	}
	st := p.FailureStats()
	if st.BootFailures[CatalyzerSfork] == 0 {
		t.Fatalf("no sfork failures recorded: %+v", st)
	}
	if st.Fallbacks[r.System] != 1 {
		t.Fatalf("fallback not recorded for %s: %+v", r.System, st)
	}
	if st.Retries == 0 || st.BackoffTotal == 0 {
		t.Fatalf("retry/backoff not recorded: %+v", st)
	}
}

func TestRetrySucceedsWithoutFallback(t *testing.T) {
	// Find a seed whose first sfork draw fails and second succeeds, then
	// verify the retry (not a fallback) serves the request.
	for seed := int64(1); seed < 200; seed++ {
		in := faults.New(seed)
		in.Arm(faults.SiteSfork, 0.5)
		first := in.Check(faults.SiteSfork) != nil
		second := in.Check(faults.SiteSfork) != nil
		if !(first && !second) {
			continue
		}
		p := preparedPlatform(t, seed)
		p.M.Faults.Arm(faults.SiteSfork, 0.5)
		r, err := p.BootRecover(context.Background(), "c-hello", CatalyzerSfork)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		defer r.Sandbox.Release()
		if r.System != CatalyzerSfork {
			t.Fatalf("seed %d: retry should have served via sfork, got %s", seed, r.System)
		}
		st := p.FailureStats()
		if st.Retries != 1 || st.BootFailures[CatalyzerSfork] != 1 {
			t.Fatalf("stats after one retry: %+v", st)
		}
		return
	}
	t.Fatal("no seed with fail-then-succeed schedule found")
}

func TestBreakerOpensAndSkipsStage(t *testing.T) {
	p := preparedPlatform(t, 5)
	p.SetRecoveryConfig(RecoveryConfig{
		MaxRetries:          0,
		BreakerThreshold:    3,
		BreakerCooldown:     simtime.Second,
		QuarantineThreshold: 100, // keep quarantine out of this test
	})
	p.M.Faults.Arm(faults.SiteSfork, 1)

	// Three invocations fail the sfork stage three times → breaker opens.
	for i := 0; i < 3; i++ {
		r, err := p.BootRecover(context.Background(), "c-hello", CatalyzerSfork)
		if err != nil {
			t.Fatalf("invocation %d: %v", i, err)
		}
		r.Sandbox.Release()
	}
	states := p.BreakerStates()
	if states["c-hello/"+string(CatalyzerSfork)] != "open" {
		t.Fatalf("sfork breaker not open: %v", states)
	}
	st := p.FailureStats()
	if st.BreakerTrips != 1 {
		t.Fatalf("trips = %d, want 1", st.BreakerTrips)
	}

	// The next invocation skips sfork without attempting it.
	fails := st.BootFailures[CatalyzerSfork]
	r, err := p.BootRecover(context.Background(), "c-hello", CatalyzerSfork)
	if err != nil {
		t.Fatal(err)
	}
	r.Sandbox.Release()
	st = p.FailureStats()
	if st.BootFailures[CatalyzerSfork] != fails {
		t.Fatal("open breaker did not prevent the sfork attempt")
	}
	if st.BreakerSkips == 0 {
		t.Fatalf("skip not counted: %+v", st)
	}

	// After the virtual-time cooldown and with faults gone, the breaker
	// half-opens, the probe succeeds, and the path closes again.
	p.M.Faults.DisarmAll()
	p.M.Env.Charge(simtime.Second)
	r, err = p.BootRecover(context.Background(), "c-hello", CatalyzerSfork)
	if err != nil {
		t.Fatal(err)
	}
	r.Sandbox.Release()
	if r.System != CatalyzerSfork {
		t.Fatalf("probe served by %s, want sfork", r.System)
	}
	if got := p.BreakerStates()["c-hello/"+string(CatalyzerSfork)]; got != "closed" {
		t.Fatalf("breaker after successful probe = %s", got)
	}
}

func TestTemplateQuarantineAndRebuild(t *testing.T) {
	p := preparedPlatform(t, 9)
	p.SetRecoveryConfig(RecoveryConfig{
		MaxRetries:          0,
		BreakerThreshold:    100, // keep the breaker out of this test
		BreakerCooldown:     simtime.Second,
		QuarantineThreshold: 3,
	})
	p.M.Faults.Arm(faults.SiteSfork, 1)

	f, _ := p.Lookup("c-hello")
	oldTmpl := f.Tmpl
	for i := 0; i < 3; i++ {
		r, err := p.BootRecover(context.Background(), "c-hello", CatalyzerSfork)
		if err != nil {
			t.Fatalf("invocation %d: %v", i, err)
		}
		r.Sandbox.Release()
	}
	st := p.FailureStats()
	if st.TemplatesQuarantined != 1 {
		t.Fatalf("quarantines = %d, want 1: %+v", st.TemplatesQuarantined, st)
	}
	if f.Tmpl == nil {
		t.Fatal("template not rebuilt after quarantine")
	}
	if oldTmpl.Sandbox() != nil && !oldTmpl.Sandbox().Released() {
		// Refresh swaps the sandbox in place, so inspect via the handle.
		t.Log("template refreshed in place (same handle, fresh sandbox)")
	}

	// The rebuilt template works once faults stop.
	p.M.Faults.DisarmAll()
	r, err := p.BootRecover(context.Background(), "c-hello", CatalyzerSfork)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Sandbox.Release()
	if r.System != CatalyzerSfork {
		t.Fatalf("rebuilt template not used: served by %s", r.System)
	}
}

func TestChainExhaustionReturnsTypedError(t *testing.T) {
	// gVisor cold boot is the deliberately fault-free last resort, so a
	// Catalyzer chain never exhausts under injection alone. A baseline
	// strategy with a missing precondition (GVisorRestore, no image) has
	// a single-stage chain and does exhaust.
	p := New(costmodel.Default())
	if _, err := p.Register("c-hello"); err != nil {
		t.Fatal(err)
	}
	live := p.M.Live()
	_, err := p.BootRecover(context.Background(), "c-hello", GVisorRestore)
	if err == nil {
		t.Fatal("restore without an image booted")
	}
	var be *BootError
	if !errors.As(err, &be) {
		t.Fatalf("exhausted chain error not typed: %v", err)
	}
	if be.Function != "c-hello" || be.Requested != GVisorRestore {
		t.Fatalf("BootError fields: %+v", be)
	}
	if len(be.Attempts) != 1 {
		t.Fatalf("attempts = %d, want 1", len(be.Attempts))
	}
	if !errors.Is(err, ErrNoImage) {
		t.Fatalf("BootError does not unwrap to ErrNoImage: %v", err)
	}
	if p.M.Live() != live {
		t.Fatalf("failed chain leaked instances: %d -> %d", live, p.M.Live())
	}
	if p.FailureStats().Exhausted != 1 {
		t.Fatalf("exhaustion not counted: %+v", p.FailureStats())
	}
}

func TestAllFaultsArmedStillServesViaGVisor(t *testing.T) {
	// With every injection site firing at rate 1, the chain degrades all
	// the way to the fault-free gVisor cold boot and still serves —
	// without leaking the partially-booted instances of the failed
	// stages.
	p := preparedPlatform(t, 13)
	live := p.M.Live()
	for _, s := range faults.Sites() {
		p.M.Faults.Arm(s, 1)
	}
	r, err := p.BootRecover(context.Background(), "c-hello", CatalyzerSfork)
	if err != nil {
		t.Fatalf("chain with gvisor terminal failed: %v", err)
	}
	if r.System != GVisor {
		t.Fatalf("served by %s, want gvisor last resort", r.System)
	}
	r.Sandbox.Release()
	if p.M.Live() != live {
		t.Fatalf("failed stages leaked instances: %d -> %d", live, p.M.Live())
	}
	st := p.FailureStats()
	if st.BootFailures[CatalyzerSfork] == 0 || st.Fallbacks[GVisor] != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPreconditionSkipsStageWithoutBreakerCharge(t *testing.T) {
	// Image prepared but no template: the sfork stage is a precondition
	// miss, the chain degrades, and the sfork breaker stays untouched.
	p := New(costmodel.Default())
	p.M.Faults = faults.New(1)
	if _, err := p.PrepareImage("c-hello"); err != nil {
		t.Fatal(err)
	}
	r, err := p.BootRecover(context.Background(), "c-hello", CatalyzerSfork)
	if err != nil {
		t.Fatalf("chain with missing template failed: %v", err)
	}
	defer r.Sandbox.Release()
	if r.System == CatalyzerSfork {
		t.Fatal("served by sfork without a template")
	}
	st := p.FailureStats()
	if st.BootFailures[CatalyzerSfork] != 0 {
		t.Fatalf("precondition miss charged the sfork stage: %+v", st)
	}
	if got := p.BreakerStates()["c-hello/"+string(CatalyzerSfork)]; got != "closed" {
		t.Fatalf("sfork breaker after precondition miss = %q", got)
	}
}

func TestBootRecoverUnknownFunction(t *testing.T) {
	p := New(costmodel.Default())
	_, err := p.BootRecover(context.Background(), "no-such-fn", CatalyzerSfork)
	if !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("err = %v, want ErrNotRegistered", err)
	}
}

func TestCorruptStoredImageQuarantinedAndRebuilt(t *testing.T) {
	dir := t.TempDir()
	store, err := image.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// First platform builds and persists the image.
	p1 := NewWithStore(costmodel.Default(), store)
	if _, err := p1.PrepareImage("c-hello"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored payload (the active generation file).
	path, err := store.ActivePath("c-hello")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Second platform hits the corruption, quarantines, rebuilds, saves.
	p2 := NewWithStore(costmodel.Default(), store)
	f, err := p2.PrepareImage("c-hello")
	if err != nil {
		t.Fatalf("rebuild after corruption failed: %v", err)
	}
	if f.Image == nil {
		t.Fatal("no image after rebuild")
	}
	if got := p2.FailureStats().ImagesQuarantined; got != 1 {
		t.Fatalf("ImagesQuarantined = %d, want 1", got)
	}
	q, err := store.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[0] != "c-hello" {
		t.Fatalf("Quarantined() = %v", q)
	}
	// The rebuilt artifact on disk is valid again.
	if _, err := store.Load("c-hello"); err != nil {
		t.Fatalf("rebuilt stored image unreadable: %v", err)
	}
}

func TestInjectedLoadFaultRebuildsWithoutQuarantine(t *testing.T) {
	dir := t.TempDir()
	store, err := image.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewWithStore(costmodel.Default(), store)
	if _, err := p1.PrepareImage("c-hello"); err != nil {
		t.Fatal(err)
	}

	p2 := NewWithStore(costmodel.Default(), store)
	p2.M.Faults = faults.New(2)
	p2.M.Faults.Arm(faults.SiteImageLoad, 1)
	if _, err := p2.PrepareImage("c-hello"); err != nil {
		t.Fatalf("rebuild after load fault failed: %v", err)
	}
	st := p2.FailureStats()
	if st.ImageLoadFaults != 1 || st.ImagesQuarantined != 0 {
		t.Fatalf("stats = %+v, want 1 load fault, 0 quarantines", st)
	}
	q, _ := store.Quarantined()
	if len(q) != 0 {
		t.Fatalf("load fault quarantined the stored file: %v", q)
	}
}

func TestPlatformCloseReleasesEverything(t *testing.T) {
	p := preparedPlatform(t, 3)
	if _, err := p.PrepareTemplate("python-hello"); err != nil {
		t.Fatal(err)
	}
	r, err := p.InvokeRecover(context.Background(), "c-hello", CatalyzerRestore)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sandbox == nil || !r.Sandbox.Released() {
		t.Fatal("InvokeRecover did not release the instance")
	}
	p.Close()
	if p.M.Live() != 0 {
		t.Fatalf("live after Close = %d, want 0", p.M.Live())
	}
}
