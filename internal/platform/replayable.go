package platform

import (
	"fmt"

	"catalyzer/internal/guest"
	"catalyzer/internal/image"
	"catalyzer/internal/sandbox"
	"catalyzer/internal/simtime"
	"catalyzer/internal/vfs"
)

// Replayable is the Replayable-Execution comparison baseline (§7): a
// container-based checkpoint/restore system that pioneered on-demand
// paging for application state but recovers *all* system state on the
// critical path — the distinction Catalyzer's separated state recovery
// and lazy I/O reconnection remove. The paper credits it with ~54 ms JVM
// boots; Catalyzer's key claim is that on-demand paging alone is not
// sufficient for virtualization-based sandboxes.
const Replayable System = "replayable"

// bootReplayable restores a function inside a lean container: on-demand
// memory (overlay mapping) + one-by-one state deserialization + eager
// re-do of every I/O connection.
func (p *Platform) bootReplayable(f *Function) (*sandbox.Sandbox, *simtime.Timeline, error) {
	if f.Image == nil {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoImage, f.Spec.Name)
	}
	m := p.M
	env := m.Env
	tl := simtime.NewTimeline(env.Clock)
	opts := sandbox.Options{Profile: sandbox.ContainerProfile(env.Cost)}
	s := sandbox.NewRestoredShell(m, f.Spec, opts, f.FS)

	// Lean container setup (SOCK-style).
	tl.Record(sandbox.PhaseManagement, env.Cost.LeanContainerCreate)
	tl.Measure(sandbox.PhaseBootProcess, func() {
		env.Charge(env.Cost.HostForkExec)
		env.ChargeN(env.Cost.InstanceInterference, m.Live()-1)
	})

	// On-demand application memory: Replayable's contribution.
	var memErr error
	tl.Measure(sandbox.PhaseMapImage, func() {
		if f.Mapping == nil {
			f.Mapping = image.NewMapping(env, m.Frames, f.Image.Mem)
		} else {
			f.Mapping = f.Mapping.Share(env)
		}
		memErr = s.MapImageHeap(f.Mapping)
	})
	if memErr != nil {
		return nil, nil, memErr
	}

	// System state: recovered one-by-one on the critical path (the
	// limitation §7 contrasts with separated state recovery).
	var k *guest.Kernel
	var kErr error
	tl.Measure(sandbox.PhaseRecoverKernel, func() {
		k, kErr = guest.RestoreBaseline(env, f.Image.Kernel)
	})
	if kErr != nil {
		return nil, nil, kErr
	}
	// I/O connections: all re-done eagerly.
	tl.Measure(sandbox.PhaseReconnectIO, func() {
		k.Conns = vfs.RestoreEager(env, f.Image.Kernel.ConnRecords)
	})
	s.SetKernel(k)
	tl.Record(sandbox.PhaseSendRPC, env.Cost.RPCSend)
	s.AtEntry = true
	return s, tl, nil
}
