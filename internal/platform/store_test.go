package platform

import (
	"testing"

	"catalyzer/internal/costmodel"
	"catalyzer/internal/image"
)

func TestPlatformPersistsImagesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := image.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First platform builds and persists the image.
	p1 := NewWithStore(costmodel.Default(), store)
	f1, err := p1.PrepareImage("c-nginx")
	if err != nil {
		t.Fatal(err)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "c-nginx" {
		t.Fatalf("store contents = %v", names)
	}

	// A "restarted" platform loads from the store instead of rebuilding.
	p2 := NewWithStore(costmodel.Default(), store)
	f2, err := p2.PrepareImage("c-nginx")
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Image.Kernel.Records.Region) != string(f1.Image.Kernel.Records.Region) {
		t.Fatal("restarted platform loaded a different image")
	}
	if f2.Cache == nil || f2.Cache.Len() != f1.Cache.Len() {
		t.Fatalf("I/O cache lost across restart: %v", f2.Cache)
	}
	// And boots from it normally.
	r, err := p2.Invoke("c-nginx", CatalyzerRestore)
	if err != nil {
		t.Fatal(err)
	}
	if r.BootLatency <= 0 {
		t.Fatal("degenerate boot")
	}
}

func TestPlatformWithoutStoreUnchanged(t *testing.T) {
	p := New(costmodel.Default())
	if _, err := p.PrepareImage("c-hello"); err != nil {
		t.Fatal(err)
	}
}
