package platform

import (
	"context"
	"os"
	"testing"

	"catalyzer/internal/costmodel"
	"catalyzer/internal/faults"
	"catalyzer/internal/image"
)

func TestPlatformPersistsImagesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := image.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First platform builds and persists the image.
	p1 := NewWithStore(costmodel.Default(), store)
	f1, err := p1.PrepareImage("c-nginx")
	if err != nil {
		t.Fatal(err)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "c-nginx" {
		t.Fatalf("store contents = %v", names)
	}

	// A "restarted" platform loads from the store instead of rebuilding.
	p2 := NewWithStore(costmodel.Default(), store)
	f2, err := p2.PrepareImage("c-nginx")
	if err != nil {
		t.Fatal(err)
	}
	if string(f2.Image.Kernel.Records.Region) != string(f1.Image.Kernel.Records.Region) {
		t.Fatal("restarted platform loaded a different image")
	}
	if f2.Cache == nil || f2.Cache.Len() != f1.Cache.Len() {
		t.Fatalf("I/O cache lost across restart: %v", f2.Cache)
	}
	// And boots from it normally.
	r, err := p2.Invoke("c-nginx", CatalyzerRestore)
	if err != nil {
		t.Fatal(err)
	}
	if r.BootLatency <= 0 {
		t.Fatal("degenerate boot")
	}
}

func TestPlatformWithoutStoreUnchanged(t *testing.T) {
	p := New(costmodel.Default())
	if _, err := p.PrepareImage("c-hello"); err != nil {
		t.Fatal(err)
	}
}

// TestRollbackToLastKnownGood is the platform half of the rollback
// contract: with two generations persisted, a corrupt active generation
// is quarantined, the previous generation is served immediately
// (Rollbacks counted), and a fresh image is rebuilt off the critical
// path.
func TestRollbackToLastKnownGood(t *testing.T) {
	dir := t.TempDir()
	store, err := image.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewWithStore(costmodel.Default(), store)
	if _, err := p1.PrepareImage("c-hello"); err != nil {
		t.Fatal(err)
	}
	// Second generation (a re-deploy of the same function), keeping
	// generation 1 as last-known-good.
	f1, err := p1.Lookup("c-hello")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(f1.Image); err != nil {
		t.Fatal(err)
	}
	if g, lkg := store.ActiveGen("c-hello"), store.LastKnownGood("c-hello"); g != 2 || lkg != 1 {
		t.Fatalf("setup generations = active %d, lkg %d, want 2, 1", g, lkg)
	}
	// Corrupt the active generation on disk.
	path, err := store.ActivePath("c-hello")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A restarted platform hits the corruption: quarantine + rollback,
	// invocation served, rebuild off the critical path.
	p2 := NewWithStore(costmodel.Default(), store)
	f2, err := p2.PrepareImage("c-hello")
	if err != nil {
		t.Fatalf("prepare with corrupt active generation failed: %v", err)
	}
	if f2.Image == nil {
		t.Fatal("no image after rollback")
	}
	st := p2.FailureStats()
	if st.Rollbacks != 1 {
		t.Fatalf("Rollbacks = %d, want 1: %+v", st.Rollbacks, st)
	}
	if st.ImagesQuarantined != 1 {
		t.Fatalf("ImagesQuarantined = %d, want 1", st.ImagesQuarantined)
	}
	// The rolled-back image serves an invocation right now.
	r, err := p2.InvokeRecover(context.Background(), "c-hello", CatalyzerRestore)
	if err != nil {
		t.Fatalf("invoke on rolled-back image: %v", err)
	}
	if r.Total() <= 0 {
		t.Fatal("degenerate invocation")
	}
	// The off-critical-path rebuild lands a fresh generation.
	p2.WaitRebuilds()
	st = p2.FailureStats()
	if st.ImageRebuilds != 1 {
		t.Fatalf("ImageRebuilds = %d, want 1: %+v", st.ImageRebuilds, st)
	}
	if _, err := store.Load("c-hello"); err != nil {
		t.Fatalf("store unreadable after rebuild: %v", err)
	}
	if g := store.ActiveGen("c-hello"); g <= 1 {
		t.Fatalf("rebuild did not advance the active generation: %d", g)
	}
	q, err := store.Quarantined()
	if err != nil || len(q) != 1 || q[0] != "c-hello" {
		t.Fatalf("Quarantined = %v, %v", q, err)
	}
	p2.Close()
}

// TestStoreCrashDuringPersistDoesNotFailDeploy: a Save that "crashes"
// at a durability boundary is counted (ImageSaveFailures), but the
// deploy succeeds on the in-memory image and a platform restart against
// the same directory recovers a consistent store.
func TestStoreCrashDuringPersistDoesNotFailDeploy(t *testing.T) {
	dir := t.TempDir()
	store, err := image.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := NewWithStore(costmodel.Default(), store)
	inj := faults.New(7)
	inj.Arm(faults.SiteStoreRename, 1)
	p.InstallFaults(inj)
	f, err := p.PrepareImage("c-hello")
	if err != nil {
		t.Fatalf("deploy failed on a persistence crash: %v", err)
	}
	if f.Image == nil {
		t.Fatal("no in-memory image")
	}
	if st := p.FailureStats(); st.ImageSaveFailures != 1 {
		t.Fatalf("ImageSaveFailures = %d, want 1: %+v", st.ImageSaveFailures, st)
	}
	// The function still serves.
	if _, err := p.Invoke("c-hello", CatalyzerRestore); err != nil {
		t.Fatal(err)
	}
	// Reopening the store dir converges (pre-Save state: nothing was
	// acknowledged) and sweeps the orphaned temp file.
	store2, err := image.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := store2.Stats(); st.OrphansSwept != 1 {
		t.Fatalf("OrphansSwept = %d, want 1", st.OrphansSwept)
	}
	names, err := store2.List()
	if err != nil || len(names) != 0 {
		t.Fatalf("unacknowledged save surfaced on reopen: %v, %v", names, err)
	}
}

// TestStoredFunctions: the store's manifest names the functions a
// restarted daemon can rehydrate.
func TestStoredFunctions(t *testing.T) {
	p := New(costmodel.Default())
	if names, err := p.StoredFunctions(); err != nil || names != nil {
		t.Fatalf("StoredFunctions without store = %v, %v", names, err)
	}
	dir := t.TempDir()
	store, err := image.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ps := NewWithStore(costmodel.Default(), store)
	for _, fn := range []string{"c-hello", "c-nginx"} {
		if _, err := ps.PrepareImage(fn); err != nil {
			t.Fatal(err)
		}
	}
	names, err := ps.StoredFunctions()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "c-hello" || names[1] != "c-nginx" {
		t.Fatalf("StoredFunctions = %v", names)
	}
}
