package platform

import (
	"fmt"

	"catalyzer/internal/faults"
	"catalyzer/internal/sandbox"
	"catalyzer/internal/simtime"
	"catalyzer/internal/supervise"
)

// This file wires the runtime supervision layer (internal/supervise)
// into the platform: liveness probes over the Zygote pool and template
// sandboxes (the keep-warm cache registers its own probe), the
// hung-invocation watchdog, the sfork lineage poisoning verdict with
// async template regeneration, and the per-function crash-loop gate.
//
// Everything runs in virtual time. Probes fire from PollSupervise,
// which the recovered invoke paths call on their way out, so probe and
// self-healing work is charged to the machine clock outside any
// invocation's measured latency — the virtual-time meaning of "off the
// critical path".

// registerProbes installs the platform's built-in probe groups
// (construction time; the keep-warm cache adds its own via
// RegisterProbe).
func (p *Platform) registerProbes() {
	p.sup.Register("zygotes", p.probeZygotes)
	p.sup.Register("templates", p.probeTemplates)
}

// RegisterProbe adds a named probe group to the platform's supervisor
// (the keep-warm cache uses this). fn returns how many targets it
// checked and how many wedged ones it evicted.
func (p *Platform) RegisterProbe(name string, fn func() (checked, evicted int)) {
	p.sup.Register(name, fn)
}

// PollSupervise runs every due probe group. The recovered invoke paths
// call it on their way out; tests call it to force a supervision pass
// after advancing virtual time.
func (p *Platform) PollSupervise() { p.sup.Poll() }

// WaitSupervise blocks until in-flight probes and tracked self-healing
// tasks (template regens, pool refills) finish.
func (p *Platform) WaitSupervise() { p.sup.Wait() }

// SuperviseStats returns the supervision accounting (probes run,
// evictions, crash-loop parks and rejects).
func (p *Platform) SuperviseStats() supervise.Stats { return p.sup.Stats() }

// ParkedFunctions lists crash-looping functions currently parked, with
// their remaining virtual park time.
func (p *Platform) ParkedFunctions() map[string]simtime.Duration { return p.sup.Parked() }

// ProbeSandbox runs one liveness probe on s under the machine lock
// (probe work is machine work), returning whether s is healthy.
func (p *Platform) ProbeSandbox(s *sandbox.Sandbox) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return s.Probe()
}

// probeZygotes prunes wedged Zygotes from the pool and tops it back up.
// The refill runs inline: Poll fires after the probing invocation's
// latency has been measured, so the construction cost lands on the
// machine clock off every request's critical path — and staying
// synchronous keeps same-seed runs identical (a backgrounded refill
// would charge the clock at a host-scheduling-dependent point). It only
// runs when the probe actually evicted something, so a platform that
// never warm-boots never grows a pool.
func (p *Platform) probeZygotes() (checked, evicted int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	checked, evicted = p.Zygotes.Prune()
	if evicted > 0 {
		p.Zygotes.Refill()
	}
	return checked, evicted
}

// probeTemplates probes every prepared template sandbox; a wedged
// template is retired immediately (children already forked keep their
// pages through their own references) and regenerated asynchronously.
func (p *Platform) probeTemplates() (checked, evicted int) {
	for _, f := range p.registeredFunctions() {
		p.mu.Lock()
		t := f.Tmpl
		if t == nil {
			p.mu.Unlock()
			continue
		}
		checked++
		healthy := t.Probe()
		if !healthy {
			t.Retire()
			f.Tmpl = nil
		}
		p.mu.Unlock()
		if !healthy {
			evicted++
			p.startTemplateRegen(f)
		}
	}
	return checked, evicted
}

// executeWatched serves one request on s under the hung-invocation
// watchdog: if the invoke-hang site fires, the execution never returns
// on its own, the watchdog charges its kill budget (WatchdogMultiple ×
// the handler's expected compute) of virtual time, reaps the instance,
// and surfaces ErrInvocationHung. The caller's admission slot is
// released by the normal error return path.
func (p *Platform) executeWatched(name string, s *sandbox.Sandbox) (simtime.Duration, error) {
	p.mu.Lock()
	if ferr := p.M.Faults.Check(faults.SiteInvokeHang); ferr != nil {
		budget := s.Spec.ExecComputeCost() * simtime.Duration(p.sup.Config().WatchdogMultiple)
		if budget <= 0 {
			budget = simtime.Duration(p.sup.Config().WatchdogMultiple) * simtime.Millisecond
		}
		p.M.Env.Charge(budget)
		s.Release()
		p.mu.Unlock()
		p.rec.addStats(func(st *FailureStats) { st.WatchdogKills++ })
		return 0, fmt.Errorf("%w: %s killed after %v: %w", ErrInvocationHung, name, budget, ferr)
	}
	d, err := s.Execute()
	p.mu.Unlock()
	return d, err
}

// noteExecFailure is the platform's execution-stage failure hook: it
// feeds the function's crash-loop window and, for sfork children, the
// template's lineage bookkeeping. Reaching the poisoning verdict —
// PoisonThreshold *distinct* failed children of one template —
// quarantines the template (only if it still owns that lineage; a
// successor is never convicted for a predecessor's children) and
// rebuilds it asynchronously. Fork boots degrade through ErrNoTemplate
// to zygote/restore until the regen lands.
func (p *Platform) noteExecFailure(name string, s *sandbox.Sandbox) {
	p.sup.NoteFailure(name)
	lin := s.Lineage
	if lin == nil {
		return
	}
	if lin.NoteFailure(s.HostPID) < p.sup.Config().PoisonThreshold {
		return
	}
	if !lin.MarkPoisoned() {
		return // verdict already raised by a concurrent failure
	}
	f, err := p.Lookup(name)
	if err != nil {
		return
	}
	quarantined := false
	p.mu.Lock()
	if f.Tmpl != nil && f.Tmpl.Lineage() == lin {
		f.Tmpl.Retire()
		f.Tmpl = nil
		quarantined = true
	}
	p.mu.Unlock()
	if !quarantined {
		return
	}
	p.rec.addStats(func(st *FailureStats) {
		st.TemplatesPoisoned++
		st.TemplatesQuarantined++
	})
	p.startTemplateRegen(f)
}

// startTemplateRegen kicks off an async rebuild of f's template sandbox
// (after a poisoning verdict or a wedged-template eviction),
// deduplicating concurrent requests per function. The task is tracked
// by the supervisor: Close drains it, and nothing starts after Close.
func (p *Platform) startTemplateRegen(f *Function) {
	name := f.Spec.Name
	p.regenMu.Lock()
	if p.regening[name] {
		p.regenMu.Unlock()
		return
	}
	p.regening[name] = true
	p.regenMu.Unlock()
	if !p.sup.Go(func() { p.regenTemplate(f) }) {
		p.regenMu.Lock()
		delete(p.regening, name)
		p.regenMu.Unlock()
	}
}

// regenTemplate rebuilds f's template under the machine lock. If some
// other path (PrepareTemplate, noteSforkFailure's Refresh) already
// installed one, the regen stands down.
func (p *Platform) regenTemplate(f *Function) {
	name := f.Spec.Name
	defer func() {
		p.regenMu.Lock()
		delete(p.regening, name)
		p.regenMu.Unlock()
	}()
	p.mu.Lock()
	if f.Tmpl != nil {
		p.mu.Unlock()
		return
	}
	tmpl, err := p.Cat.MakeTemplate(f.Spec, f.FS)
	if err == nil {
		f.Tmpl = tmpl
		f.tmplUse = p.M.Now()
	}
	p.mu.Unlock()
	p.rec.addStats(func(st *FailureStats) {
		if err != nil {
			st.TemplateRegenFailures++
		} else {
			st.TemplateRegens++
		}
	})
}
