package platform

import (
	"context"
	"errors"
	"sync"
	"testing"

	"catalyzer/internal/costmodel"
	"catalyzer/internal/faults"
	"catalyzer/internal/simtime"
)

// supervised builds a prepared platform whose probes are due on every
// PollSupervise (1-tick cadence), so tests don't have to choreograph the
// virtual clock against the default 100ms interval.
func supervised(t testing.TB, name string) *Platform {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Supervise.ProbeInterval = 1
	p, err := NewWithConfig(costmodel.Default(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PrepareTemplate(name); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.ZygotePoolSize = -1
	if _, err := NewWithConfig(costmodel.Default(), bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative pool size: err = %v, want ErrBadConfig", err)
	}
	bad = DefaultConfig()
	bad.Supervise.ProbeInterval = -simtime.Millisecond
	if _, err := NewWithConfig(costmodel.Default(), bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative probe interval: err = %v, want ErrBadConfig", err)
	}

	// The pool size knob actually reaches the pool (the old hardcoded 4).
	cfg := DefaultConfig()
	cfg.ZygotePoolSize = 7
	p, err := NewWithConfig(costmodel.Default(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Config().ZygotePoolSize != 7 || p.Zygotes.Target() != 7 {
		t.Fatalf("pool size not threaded through: cfg=%d target=%d",
			p.Config().ZygotePoolSize, p.Zygotes.Target())
	}
	if DefaultConfig().ZygotePoolSize != DefaultZygotePoolSize {
		t.Fatalf("default pool size = %d, want %d", DefaultConfig().ZygotePoolSize, DefaultZygotePoolSize)
	}
}

// TestZygoteProbePrunesAndRefills: wedged pooled Zygotes are pruned by
// the probe and the pool is topped back up by a tracked background task,
// off any invocation's critical path.
func TestZygoteProbePrunesAndRefills(t *testing.T) {
	p := supervised(t, "c-hello")
	// A zygote boot populates the pool to its target.
	if _, err := p.Invoke("c-hello", CatalyzerZygote); err != nil {
		t.Fatal(err)
	}
	if p.Zygotes.Ready() != p.Zygotes.Target() {
		t.Fatalf("pool not at target after zygote boot: %d/%d", p.Zygotes.Ready(), p.Zygotes.Target())
	}

	p.ArmFault(faults.SiteSandboxWedge, 1)
	p.PollSupervise() // prune runs inline; the refill is backgrounded
	p.DisarmFaults()
	p.WaitSupervise()

	if p.Zygotes.Ready() != p.Zygotes.Target() {
		t.Fatalf("pool not refilled after prune: %d/%d", p.Zygotes.Ready(), p.Zygotes.Target())
	}
	st := p.SuperviseStats()
	if st.WedgedEvicted < p.Zygotes.Target() {
		t.Fatalf("WedgedEvicted = %d, want >= %d (whole pool wedged)", st.WedgedEvicted, p.Zygotes.Target())
	}
}

// TestTemplateProbeQuarantineAndRegen: a wedged template sandbox is
// retired by the probe and rebuilt asynchronously; fork boots work again
// once the regen lands.
func TestTemplateProbeQuarantineAndRegen(t *testing.T) {
	p := supervised(t, "c-hello")
	f, err := p.Lookup("c-hello")
	if err != nil {
		t.Fatal(err)
	}

	p.ArmFault(faults.SiteSandboxWedge, 1)
	p.PollSupervise()
	p.DisarmFaults()
	p.WaitSupervise()

	p.mu.Lock()
	tmpl := f.Tmpl
	p.mu.Unlock()
	if tmpl == nil {
		t.Fatal("template not regenerated after wedge eviction")
	}
	st := p.FailureStats()
	if st.TemplateRegens != 1 {
		t.Fatalf("TemplateRegens = %d, want 1 (%+v)", st.TemplateRegens, st)
	}
	if p.SuperviseStats().WedgedEvicted == 0 {
		t.Fatal("wedged template not counted as evicted")
	}
	if _, err := p.Invoke("c-hello", CatalyzerSfork); err != nil {
		t.Fatalf("fork boot from regenerated template: %v", err)
	}
}

// TestTemplateRegenDeduplicated: concurrent failure paths requesting a
// rebuild of the same template produce exactly one regen.
func TestTemplateRegenDeduplicated(t *testing.T) {
	p := supervised(t, "c-hello")
	f, err := p.Lookup("c-hello")
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	f.Tmpl.Retire()
	f.Tmpl = nil
	p.mu.Unlock()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.startTemplateRegen(f)
		}()
	}
	wg.Wait()
	p.WaitSupervise()

	if st := p.FailureStats(); st.TemplateRegens != 1 {
		t.Fatalf("TemplateRegens = %d, want 1 (regen not deduplicated)", st.TemplateRegens)
	}
	p.mu.Lock()
	tmpl := f.Tmpl
	p.mu.Unlock()
	if tmpl == nil {
		t.Fatal("deduplicated regen left no template")
	}
}

// TestKeepWarmProbeEvictsWedged: the keep-warm cache's probe group
// liveness-checks idle instances and evicts wedged ones, so a cache hit
// never hands out a dead sandbox.
func TestKeepWarmProbeEvictsWedged(t *testing.T) {
	p := supervised(t, "c-hello")
	kw := NewKeepWarmCache(p, 4, GVisor)
	defer kw.Release()
	if _, _, err := kw.Invoke("c-hello"); err != nil {
		t.Fatal(err)
	}
	if kw.Len() != 1 {
		t.Fatalf("cache len = %d after first invoke, want 1", kw.Len())
	}

	p.ArmFault(faults.SiteSandboxWedge, 1)
	p.PollSupervise()
	p.DisarmFaults()
	if kw.Len() != 0 {
		t.Fatalf("wedged idle instance not evicted: len = %d", kw.Len())
	}
	if p.SuperviseStats().WedgedEvicted == 0 {
		t.Fatal("eviction not counted in supervise stats")
	}
	// The next request is a miss that boots a fresh, healthy instance.
	if _, _, err := kw.Invoke("c-hello"); err != nil {
		t.Fatalf("invoke after eviction: %v", err)
	}
}

// TestWatchdogKillChargesBudgetAndReaps: a hung invocation costs exactly
// the watchdog budget of virtual time, its instance is reaped, and the
// kill is counted.
func TestWatchdogKillChargesBudgetAndReaps(t *testing.T) {
	p := prepared(t, "c-hello")
	p.ArmFault(faults.SiteInvokeHang, 1)
	before := p.Now()
	_, err := p.InvokeRecover(context.Background(), "c-hello", CatalyzerSfork)
	if !errors.Is(err, ErrInvocationHung) {
		t.Fatalf("err = %v, want ErrInvocationHung", err)
	}
	f, _ := p.Lookup("c-hello")
	budget := f.Spec.ExecComputeCost() * simtime.Duration(DefaultConfig().Supervise.WatchdogMultiple)
	if elapsed := p.Now() - before; elapsed < budget {
		t.Fatalf("kill charged %v, want at least the %v watchdog budget", elapsed, budget)
	}
	if got := p.LiveInstances(); got != 1 { // template only
		t.Fatalf("hung instance not reaped: %d live, want 1", got)
	}
	if st := p.FailureStats(); st.WatchdogKills != 1 {
		t.Fatalf("WatchdogKills = %d, want 1", st.WatchdogKills)
	}
}

// TestSuperviseCloseDrains: after Close, no probe fires and no new
// self-healing task starts — the shutdown drain contract the daemon
// relies on.
func TestSuperviseCloseDrains(t *testing.T) {
	p := supervised(t, "c-hello")
	if _, err := p.Invoke("c-hello", CatalyzerSfork); err != nil {
		t.Fatal(err)
	}
	p.Close()

	snapshot := p.SuperviseStats().ProbesRun
	p.M.Env.Charge(simtime.Second)
	p.PollSupervise()
	if got := p.SuperviseStats().ProbesRun; got != snapshot {
		t.Fatalf("probe fired after Close: %d -> %d", snapshot, got)
	}

	// Self-healing scheduled after Close is dropped, not leaked: the
	// regen bookkeeping stays clean and no template appears.
	f, _ := p.Lookup("c-hello")
	p.startTemplateRegen(f)
	p.WaitSupervise()
	if st := p.FailureStats(); st.TemplateRegens != 0 {
		t.Fatalf("regen ran after Close: %+v", st)
	}
	p.regenMu.Lock()
	pending := len(p.regening)
	p.regenMu.Unlock()
	if pending != 0 {
		t.Fatalf("regen bookkeeping leaked after Close: %d entries", pending)
	}
}
