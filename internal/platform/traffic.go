package platform

import (
	"fmt"

	"catalyzer/internal/simtime"
)

// This file reproduces the paper's tail-latency argument (§2.2): "caching
// does not help with the tail latency, which is dominated by the 'cold
// boot' in most cases", and "a single machine is capable of running
// thousands of serverless functions, so caching all the functions in
// memory will introduce high resource overhead." A deterministic request
// trace over a skewed function popularity distribution drives two
// platforms: one with a bounded keep-warm instance cache (the
// conventional approach), one with Catalyzer fork boot. The cache serves
// popular functions well but every cache miss pays a full cold boot; fork
// boot serves hits and misses alike.

// TrafficConfig shapes a synthetic request trace.
type TrafficConfig struct {
	// Functions is the set of invocable workload names; popularity
	// follows a harmonic (Zipf-like, s=1) distribution over the slice
	// order.
	Functions []string
	// Requests is the trace length.
	Requests int
	// Seed makes the trace deterministic.
	Seed uint64
}

// Trace is a deterministic request sequence.
type Trace struct {
	Requests []string
}

// GenerateTrace builds the request sequence.
func GenerateTrace(cfg TrafficConfig) (*Trace, error) {
	if len(cfg.Functions) == 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("platform: empty traffic config")
	}
	// Harmonic weights: function i has weight 1/(i+1).
	weights := make([]float64, len(cfg.Functions))
	var total float64
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	state := cfg.Seed | 1
	next := func() float64 {
		// xorshift64*
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return float64((state*2685821657736338717)>>11) / float64(1<<53)
	}
	tr := &Trace{Requests: make([]string, 0, cfg.Requests)}
	for r := 0; r < cfg.Requests; r++ {
		x := next() * total
		for i, w := range weights {
			x -= w
			if x <= 0 || i == len(weights)-1 {
				tr.Requests = append(tr.Requests, cfg.Functions[i])
				break
			}
		}
	}
	return tr, nil
}

// KeepWarmCache is the conventional hot-boot approach (§2.2, §6.9): up to
// Capacity idle instances are kept in memory, keyed by function; a hit
// reuses the instance with near-zero latency, a miss pays a full cold
// boot. Eviction is LRU.
type KeepWarmCache struct {
	p        *Platform
	capacity int
	order    []string // LRU order, most recent last
	idle     map[string]*Result
	ColdSys  System // which system a miss boots with

	Hits, Misses int
}

// NewKeepWarmCache builds a cache over p with the given capacity.
func NewKeepWarmCache(p *Platform, capacity int, coldSys System) *KeepWarmCache {
	return &KeepWarmCache{
		p:        p,
		capacity: capacity,
		idle:     make(map[string]*Result),
		ColdSys:  coldSys,
	}
}

func (c *KeepWarmCache) touch(name string) {
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, name)
}

// Invoke serves one request: cache hit executes on the idle instance
// (boot latency zero), miss cold-boots and caches the instance.
func (c *KeepWarmCache) Invoke(name string) (boot, exec simtime.Duration, err error) {
	if r, ok := c.idle[name]; ok {
		c.Hits++
		c.touch(name)
		d, err := r.Sandbox.Execute()
		return 0, d, err
	}
	c.Misses++
	if _, err := c.p.PrepareImage(name); err != nil {
		return 0, 0, err
	}
	r, err := c.p.Boot(name, c.ColdSys)
	if err != nil {
		return 0, 0, err
	}
	d, err := r.Sandbox.Execute()
	if err != nil {
		r.Sandbox.Release()
		return 0, 0, err
	}
	// Cache the now-idle instance, evicting LRU if needed.
	if len(c.idle) >= c.capacity {
		victim := c.order[0]
		c.order = c.order[1:]
		c.idle[victim].Sandbox.Release()
		delete(c.idle, victim)
	}
	c.idle[name] = r
	c.order = append(c.order, name)
	return r.BootLatency, d, nil
}

// Release frees all cached instances.
func (c *KeepWarmCache) Release() {
	for name, r := range c.idle {
		r.Sandbox.Release()
		delete(c.idle, name)
	}
	c.order = nil
}

// TailLatencyComparison runs the same trace through a keep-warm cache and
// through Catalyzer fork boot, returning per-approach boot-latency
// metrics. It is the quantitative form of §2.2's caching critique.
func TailLatencyComparison(cfg TrafficConfig, cacheCapacity int, build func() *Platform) (cache, catalyzer *Metrics, err error) {
	tr, err := GenerateTrace(cfg)
	if err != nil {
		return nil, nil, err
	}

	// Conventional platform: keep-warm cache over gVisor cold boots.
	pc := build()
	kw := NewKeepWarmCache(pc, cacheCapacity, GVisor)
	defer kw.Release()
	cache = NewMetrics(fmt.Sprintf("keep-warm(cap=%d)", cacheCapacity))
	for _, name := range tr.Requests {
		boot, _, err := kw.Invoke(name)
		if err != nil {
			return nil, nil, err
		}
		cache.ObserveDuration(boot)
	}

	// Catalyzer platform: fork boot for every request.
	pk := build()
	catalyzer = NewMetrics("catalyzer-sfork")
	for _, name := range tr.Requests {
		if _, err := pk.PrepareTemplate(name); err != nil {
			return nil, nil, err
		}
		r, err := pk.Invoke(name, CatalyzerSfork)
		if err != nil {
			return nil, nil, err
		}
		catalyzer.Observe(r)
	}
	return cache, catalyzer, nil
}
