package platform

import (
	"fmt"
	"sort"
	"sync"

	"catalyzer/internal/simtime"
)

// This file reproduces the paper's tail-latency argument (§2.2): "caching
// does not help with the tail latency, which is dominated by the 'cold
// boot' in most cases", and "a single machine is capable of running
// thousands of serverless functions, so caching all the functions in
// memory will introduce high resource overhead." A deterministic request
// trace over a skewed function popularity distribution drives two
// platforms: one with a bounded keep-warm instance cache (the
// conventional approach), one with Catalyzer fork boot. The cache serves
// popular functions well but every cache miss pays a full cold boot; fork
// boot serves hits and misses alike.

// TrafficConfig shapes a synthetic request trace.
type TrafficConfig struct {
	// Functions is the set of invocable workload names; popularity
	// follows a harmonic (Zipf-like, s=1) distribution over the slice
	// order.
	Functions []string
	// Requests is the trace length.
	Requests int
	// Seed makes the trace deterministic.
	Seed uint64
}

// Trace is a deterministic request sequence.
type Trace struct {
	Requests []string
}

// GenerateTrace builds the request sequence.
func GenerateTrace(cfg TrafficConfig) (*Trace, error) {
	if len(cfg.Functions) == 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("%w: empty traffic config", ErrBadConfig)
	}
	// Harmonic weights: function i has weight 1/(i+1).
	weights := make([]float64, len(cfg.Functions))
	var total float64
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	state := cfg.Seed | 1
	next := func() float64 {
		// xorshift64*
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return float64((state*2685821657736338717)>>11) / float64(1<<53)
	}
	tr := &Trace{Requests: make([]string, 0, cfg.Requests)}
	for r := 0; r < cfg.Requests; r++ {
		x := next() * total
		for i, w := range weights {
			x -= w
			if x <= 0 || i == len(weights)-1 {
				tr.Requests = append(tr.Requests, cfg.Functions[i])
				break
			}
		}
	}
	return tr, nil
}

// KeepWarmCache is the conventional hot-boot approach (§2.2, §6.9): up to
// Capacity idle instances are kept in memory, keyed by function; a hit
// reuses the instance with near-zero latency, a miss pays a full cold
// boot. Eviction is LRU.
//
// The cache is safe for concurrent use. Its mutex is never held across
// machine work (boots, executions, releases): a hit removes the idle
// instance from the cache while it executes and reinserts it afterwards,
// so two hits on the same function never share a sandbox, and the
// reclaim path (the cache registers itself as a memory-pressure
// Reclaimer) can never deadlock against a boot the cache itself drives.
type KeepWarmCache struct {
	p        *Platform
	capacity int
	ColdSys  System // which system a miss boots with

	mu    sync.Mutex
	order []string // LRU order, most recent last
	idle  map[string]*Result

	// Hits and Misses are maintained under mu; concurrent readers should
	// use Counts.
	Hits, Misses int
}

// NewKeepWarmCache builds a cache over p with the given capacity and
// registers it as a memory-pressure reclaimer: under a machine memory
// budget, idle cached instances are evicted LRU-first before any boot is
// failed for memory.
func NewKeepWarmCache(p *Platform, capacity int, coldSys System) *KeepWarmCache {
	c := &KeepWarmCache{
		p:        p,
		capacity: capacity,
		idle:     make(map[string]*Result),
		ColdSys:  coldSys,
	}
	p.AddReclaimer(c)
	// The supervisor probes the cached idle instances on its virtual-time
	// cadence, evicting wedged ones so a hit never hands out a dead
	// sandbox.
	p.RegisterProbe("keep-warm", c.probeIdle)
	return c
}

// steal removes name's idle instance without touching the hit/miss
// accounting (probe traffic is not request traffic).
func (c *KeepWarmCache) steal(name string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.idle[name]
	if !ok {
		return nil, false
	}
	delete(c.idle, name)
	c.removeOrderLocked(name)
	return r, true
}

// probeIdle is the cache's supervision probe: every idle instance is
// liveness-checked; healthy ones are reinserted, wedged ones released.
// Instances are stolen one at a time under the cache mutex and probed
// outside it (probe work takes the machine lock), so the probe never
// blocks a concurrent hit on another function.
func (c *KeepWarmCache) probeIdle() (checked, evicted int) {
	c.mu.Lock()
	names := append([]string(nil), c.order...)
	c.mu.Unlock()
	for _, name := range names {
		r, ok := c.steal(name)
		if !ok {
			continue // raced with a hit; that request will find any wedge
		}
		checked++
		if c.p.ProbeSandbox(r.Sandbox) {
			c.put(name, r)
		} else {
			c.p.ReleaseSandbox(r.Sandbox)
			evicted++
		}
	}
	return checked, evicted
}

// removeOrderLocked drops name from the LRU order (c.mu held).
func (c *KeepWarmCache) removeOrderLocked(name string) {
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// take removes and returns name's idle instance, if cached.
func (c *KeepWarmCache) take(name string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.idle[name]
	if !ok {
		c.Misses++
		return nil, false
	}
	delete(c.idle, name)
	c.removeOrderLocked(name)
	c.Hits++
	return r, true
}

// put caches a now-idle instance at MRU position, evicting (outside the
// lock) whatever no longer fits: a raced duplicate for the same name,
// then LRU entries over capacity.
func (c *KeepWarmCache) put(name string, r *Result) {
	var victims []*Result
	c.mu.Lock()
	if old, ok := c.idle[name]; ok {
		victims = append(victims, old)
		c.removeOrderLocked(name)
	}
	c.idle[name] = r
	c.order = append(c.order, name)
	for c.capacity >= 0 && len(c.idle) > c.capacity {
		v := c.order[0]
		c.order = c.order[1:]
		if vr, ok := c.idle[v]; ok {
			victims = append(victims, vr)
			delete(c.idle, v)
		}
	}
	c.mu.Unlock()
	for _, v := range victims {
		c.p.ReleaseSandbox(v.Sandbox)
	}
}

// Invoke serves one request: cache hit executes on the idle instance
// (boot latency zero), miss cold-boots and caches the instance.
//
//lint:allow ctxflow context-first-entry waived: keep-warm is the paper's synchronous baseline comparator; it has no deadline semantics
func (c *KeepWarmCache) Invoke(name string) (boot, exec simtime.Duration, err error) {
	if r, ok := c.take(name); ok {
		d, err := c.p.ExecuteSandbox(r.Sandbox)
		if err != nil {
			c.p.ReleaseSandbox(r.Sandbox)
			return 0, 0, err
		}
		c.put(name, r)
		return 0, d, nil
	}
	if _, err := c.p.PrepareImage(name); err != nil {
		return 0, 0, err
	}
	r, err := c.p.Boot(name, c.ColdSys)
	if err != nil {
		return 0, 0, err
	}
	d, err := c.p.ExecuteSandbox(r.Sandbox)
	if err != nil {
		c.p.ReleaseSandbox(r.Sandbox)
		return 0, 0, err
	}
	c.put(name, r)
	return r.BootLatency, d, nil
}

// Counts reports the cache's hit/miss totals.
func (c *KeepWarmCache) Counts() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Hits, c.Misses
}

// Len reports the number of currently cached idle instances.
func (c *KeepWarmCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.idle)
}

// Reclaim implements Reclaimer: under memory pressure, evict up to max
// idle instances LRU-first. In-use instances (hits mid-execution) are
// not in the cache and cannot be reclaimed.
func (c *KeepWarmCache) Reclaim(max int) int {
	var victims []*Result
	c.mu.Lock()
	for len(victims) < max && len(c.order) > 0 {
		v := c.order[0]
		c.order = c.order[1:]
		if r, ok := c.idle[v]; ok {
			victims = append(victims, r)
			delete(c.idle, v)
		}
	}
	c.mu.Unlock()
	for _, r := range victims {
		c.p.ReleaseSandbox(r.Sandbox)
	}
	if len(victims) > 0 {
		n := len(victims)
		c.p.rec.addStats(func(s *FailureStats) { s.KeepWarmEvictions += n })
	}
	return len(victims)
}

// Release frees all cached instances, in insertion (LRU) order so
// sandbox teardown replays deterministically.
func (c *KeepWarmCache) Release() {
	c.mu.Lock()
	victims := make([]*Result, 0, len(c.idle))
	for _, name := range c.order {
		if r, ok := c.idle[name]; ok {
			victims = append(victims, r)
			delete(c.idle, name)
		}
	}
	// c.order is authoritative, but drain any stragglers defensively.
	if len(c.idle) > 0 {
		rest := make([]string, 0, len(c.idle))
		for name := range c.idle {
			rest = append(rest, name)
		}
		sort.Strings(rest)
		for _, name := range rest {
			victims = append(victims, c.idle[name])
			delete(c.idle, name)
		}
	}
	c.order = nil
	c.mu.Unlock()
	for _, r := range victims {
		c.p.ReleaseSandbox(r.Sandbox)
	}
}

// TailLatencyComparison runs the same trace through a keep-warm cache and
// through Catalyzer fork boot, returning per-approach boot-latency
// metrics. It is the quantitative form of §2.2's caching critique.
func TailLatencyComparison(cfg TrafficConfig, cacheCapacity int, build func() *Platform) (cache, catalyzer *Metrics, err error) {
	tr, err := GenerateTrace(cfg)
	if err != nil {
		return nil, nil, err
	}

	// Conventional platform: keep-warm cache over gVisor cold boots.
	pc := build()
	kw := NewKeepWarmCache(pc, cacheCapacity, GVisor)
	defer kw.Release()
	cache = NewMetrics(fmt.Sprintf("keep-warm(cap=%d)", cacheCapacity))
	for _, name := range tr.Requests {
		boot, _, err := kw.Invoke(name)
		if err != nil {
			return nil, nil, err
		}
		cache.ObserveDuration(boot)
	}

	// Catalyzer platform: fork boot for every request.
	pk := build()
	catalyzer = NewMetrics("catalyzer-sfork")
	for _, name := range tr.Requests {
		if _, err := pk.PrepareTemplate(name); err != nil {
			return nil, nil, err
		}
		r, err := pk.Invoke(name, CatalyzerSfork)
		if err != nil {
			return nil, nil, err
		}
		catalyzer.Observe(r)
	}
	return cache, catalyzer, nil
}
