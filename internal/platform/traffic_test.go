package platform

import (
	"strings"
	"testing"

	"catalyzer/internal/costmodel"
	"catalyzer/internal/simtime"
)

func TestGenerateTraceDeterministicAndSkewed(t *testing.T) {
	cfg := TrafficConfig{
		Functions: []string{"a", "b", "c", "d"},
		Requests:  2000,
		Seed:      7,
	}
	a, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(a.Requests, ",") != strings.Join(b.Requests, ",") {
		t.Fatal("trace not deterministic")
	}
	counts := map[string]int{}
	for _, r := range a.Requests {
		counts[r]++
	}
	// Harmonic skew: head function clearly more popular than the tail.
	if counts["a"] <= counts["d"]*2 {
		t.Fatalf("popularity not skewed: %v", counts)
	}
	if _, err := GenerateTrace(TrafficConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestKeepWarmCacheHitsAndEviction(t *testing.T) {
	p := New(costmodel.Default())
	kw := NewKeepWarmCache(p, 1, GVisor)
	defer kw.Release()

	if _, _, err := kw.Invoke("c-hello"); err != nil {
		t.Fatal(err)
	}
	boot, _, err := kw.Invoke("c-hello") // hit
	if err != nil {
		t.Fatal(err)
	}
	if boot != 0 {
		t.Fatalf("hit paid boot latency %v", boot)
	}
	if _, _, err := kw.Invoke("python-hello"); err != nil { // evicts c-hello
		t.Fatal(err)
	}
	boot, _, err = kw.Invoke("c-hello") // miss again
	if err != nil {
		t.Fatal(err)
	}
	if boot == 0 {
		t.Fatal("post-eviction invoke did not pay a cold boot")
	}
	if kw.Hits != 1 || kw.Misses != 3 {
		t.Fatalf("hits=%d misses=%d", kw.Hits, kw.Misses)
	}
}

func TestMetricsPercentiles(t *testing.T) {
	m := NewMetrics("test")
	if m.Percentile(99) != 0 || m.Mean() != 0 || m.Max() != 0 {
		t.Fatal("empty metrics not zero")
	}
	for i := 1; i <= 100; i++ {
		m.ObserveDuration(simtime.Duration(i) * simtime.Millisecond)
	}
	if got := m.Percentile(50); got != 50*simtime.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := m.Percentile(99); got != 99*simtime.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := m.Max(); got != 100*simtime.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if got := m.Mean(); got != 50*simtime.Millisecond+500*simtime.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if !strings.Contains(m.String(), "p99") {
		t.Fatal("String missing percentile summary")
	}
}

func TestMetricsObserveTracksBootMix(t *testing.T) {
	p := New(costmodel.Default())
	if _, err := p.PrepareTemplate("c-hello"); err != nil {
		t.Fatal(err)
	}
	m := NewMetrics("mix")
	for _, sys := range []System{CatalyzerSfork, CatalyzerSfork, CatalyzerRestore} {
		r, err := p.Invoke("c-hello", sys)
		if err != nil {
			t.Fatal(err)
		}
		m.Observe(r)
	}
	mix := m.BootMix()
	if mix[CatalyzerSfork] != 2 || mix[CatalyzerRestore] != 1 {
		t.Fatalf("mix = %v", mix)
	}
}

// TestCachingDoesNotFixTailLatency is §2.2's claim, quantified: with a
// keep-warm cache smaller than the function population, the p99 boot
// latency is still a full cold boot, while Catalyzer's fork boot keeps
// even the worst case in the low milliseconds.
func TestCachingDoesNotFixTailLatency(t *testing.T) {
	cfg := TrafficConfig{
		Functions: []string{
			"deathstar-text", "deathstar-media", "deathstar-composepost",
			"deathstar-uniqueid", "deathstar-timeline", "c-hello",
		},
		Requests: 120,
		Seed:     42,
	}
	cache, cat, err := TailLatencyComparison(cfg, 2, func() *Platform { return New(costmodel.Default()) })
	if err != nil {
		t.Fatal(err)
	}
	// The cache's median can be fine (hits on hot functions)...
	if cache.Percentile(50) > 160*simtime.Millisecond {
		t.Fatalf("cache p50 = %v; expected mostly hits", cache.Percentile(50))
	}
	// ...but its tail is a cold boot.
	if cache.Percentile(99) < 100*simtime.Millisecond {
		t.Fatalf("cache p99 = %v; expected cold-boot tail", cache.Percentile(99))
	}
	// Catalyzer's tail stays in fork-boot territory.
	if cat.Percentile(99) > 5*simtime.Millisecond {
		t.Fatalf("catalyzer p99 = %v", cat.Percentile(99))
	}
	if float64(cache.Percentile(99))/float64(cat.Percentile(99)) < 20 {
		t.Fatalf("tail gap only %.1fx", float64(cache.Percentile(99))/float64(cat.Percentile(99)))
	}
}
