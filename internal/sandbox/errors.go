package sandbox

import "errors"

// Typed sandbox errors. Like the platform sentinels, callers branch on
// these with errors.Is instead of matching message text; ErrOutOfMemory
// (machine.go) is part of the same taxonomy.
var (
	// ErrReleased: the sandbox was already torn down; it cannot serve
	// requests or be captured.
	ErrReleased = errors.New("sandbox: sandbox already released")
	// ErrNotAtEntry: image capture requires a sandbox paused at its
	// func-entry point that has not served requests yet.
	ErrNotAtEntry = errors.New("sandbox: sandbox not at func-entry point")
	// ErrImageMismatch: a func-image's memory section does not match the
	// registered spec (stale image or changed workload).
	ErrImageMismatch = errors.New("sandbox: image does not match spec")
	// ErrWedged: the sandbox stopped responding after boot (a liveness
	// probe or an execution found it wedged); it must be reaped.
	ErrWedged = errors.New("sandbox: sandbox is wedged")
	// ErrPoisoned: the sandbox inherited latently bad state from its
	// sfork template; correlated ErrPoisoned failures across a
	// template's children convict the template (see Lineage).
	ErrPoisoned = errors.New("sandbox: sandbox inherited poisoned template state")
)
