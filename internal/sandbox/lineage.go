package sandbox

import "sync"

// Lineage records a template's sfork family (template → children) so
// correlated child failures can convict the template itself: one bad
// child is a bad child, but several *distinct* children of the same
// template failing is evidence the shared template state is poisoned
// (the paper's template-sandbox sharing cuts both ways — §4 makes one
// bad template an epidemic).
//
// The bookkeeping is careful about two things the poisoning verdict
// must not get wrong:
//
//   - Dedup per child: a child that fails repeatedly (retries, stale
//     handles) counts once, so a single flaky child can never convict
//     its template alone.
//   - Released children keep their failure marks: evidence does not
//     evaporate when the failing child is reaped, but a released child
//     that never failed contributes nothing.
//
// Lineage has its own mutex and takes no other lock, so it can be
// consulted from the platform's failure paths without ordering
// concerns.
type Lineage struct {
	mu       sync.Mutex
	live     map[int]bool // live children, by host PID
	failed   map[int]bool // children that have ever failed (kept after release)
	poisoned bool
}

// NewLineage returns an empty lineage.
func NewLineage() *Lineage {
	return &Lineage{
		live:   make(map[int]bool),
		failed: make(map[int]bool),
	}
}

// Adopt records a newly sforked child by host PID.
func (l *Lineage) Adopt(pid int) {
	l.mu.Lock()
	l.live[pid] = true
	l.mu.Unlock()
}

// ReleaseChild removes a child from the live set. Its failure mark, if
// any, is retained: releasing a failed child must not shrink the
// evidence against the template.
func (l *Lineage) ReleaseChild(pid int) {
	l.mu.Lock()
	delete(l.live, pid)
	l.mu.Unlock()
}

// NoteFailure marks a child as failed (idempotent per child) and
// returns the number of distinct failed children so far — the count the
// poisoning verdict compares against its threshold.
func (l *Lineage) NoteFailure(pid int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.failed[pid] = true
	return len(l.failed)
}

// DistinctFailures returns the number of distinct children that have
// ever failed.
func (l *Lineage) DistinctFailures() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.failed)
}

// Live returns the current live-children count.
func (l *Lineage) Live() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.live)
}

// MarkPoisoned records the poisoning verdict. It returns true exactly
// once — concurrent convictions race here, and only the winner runs the
// quarantine-and-regenerate path.
func (l *Lineage) MarkPoisoned() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned {
		return false
	}
	l.poisoned = true
	return true
}

// Poisoned reports whether the verdict has been recorded.
func (l *Lineage) Poisoned() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poisoned
}
