package sandbox

import (
	"sync"
	"testing"
)

func TestLineageDedupsPerChild(t *testing.T) {
	l := NewLineage()
	l.Adopt(101)
	l.Adopt(102)

	// One flaky child failing repeatedly counts once.
	if got := l.NoteFailure(101); got != 1 {
		t.Fatalf("first failure count = %d, want 1", got)
	}
	if got := l.NoteFailure(101); got != 1 {
		t.Fatalf("repeat failure of same child counted twice: %d", got)
	}
	if got := l.NoteFailure(102); got != 2 {
		t.Fatalf("second distinct child = %d, want 2", got)
	}
	if got := l.DistinctFailures(); got != 2 {
		t.Fatalf("DistinctFailures = %d, want 2", got)
	}
}

func TestLineageReleasedChildNotDoubleCounted(t *testing.T) {
	l := NewLineage()
	l.Adopt(201)
	l.NoteFailure(201)
	l.ReleaseChild(201)

	// The evidence survives the release...
	if got := l.DistinctFailures(); got != 1 {
		t.Fatalf("failure mark evaporated on release: %d", got)
	}
	// ...but a straggler failure report for the released child must not
	// count it again.
	if got := l.NoteFailure(201); got != 1 {
		t.Fatalf("released child double-counted in verdict: %d", got)
	}
	if got := l.Live(); got != 0 {
		t.Fatalf("Live = %d after release, want 0", got)
	}
	// Releasing a child that never failed contributes nothing.
	l.Adopt(202)
	l.ReleaseChild(202)
	if got := l.DistinctFailures(); got != 1 {
		t.Fatalf("clean release changed the evidence: %d", got)
	}
}

func TestLineageLiveTracking(t *testing.T) {
	l := NewLineage()
	for pid := 1; pid <= 3; pid++ {
		l.Adopt(pid)
	}
	l.ReleaseChild(2)
	if got := l.Live(); got != 2 {
		t.Fatalf("Live = %d, want 2", got)
	}
	// Adopt is idempotent per pid.
	l.Adopt(1)
	if got := l.Live(); got != 2 {
		t.Fatalf("re-adopting a live child inflated the count: %d", got)
	}
}

// TestLineageMarkPoisonedOnce is the verdict race: many failures cross
// the threshold at once, but exactly one caller wins MarkPoisoned and
// runs the quarantine path.
func TestLineageMarkPoisonedOnce(t *testing.T) {
	l := NewLineage()
	const goroutines = 16
	wins := make(chan bool, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			l.NoteFailure(pid)
			wins <- l.MarkPoisoned()
		}(i)
	}
	wg.Wait()
	close(wins)
	won := 0
	for w := range wins {
		if w {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("MarkPoisoned returned true %d times, want exactly 1", won)
	}
	if !l.Poisoned() {
		t.Fatal("lineage not poisoned after verdict")
	}
}
