package sandbox

import (
	"testing"

	"catalyzer/internal/costmodel"
	"catalyzer/internal/vfs"
	"catalyzer/internal/workload"
)

// TestPersistentLogFlow covers §4.2's persistent-storage exception: the
// FS server grants one read-write descriptor for the function's log
// file, every request appends through it, and releasing the sandbox
// returns the grant.
func TestPersistentLogFlow(t *testing.T) {
	spec := workload.MustGet("c-hello")

	// Log-less rootfs: no grant, execution still works.
	m := NewMachine(costmodel.Default())
	bare := vfs.NewTree()
	bare.Add("/app/wrapper", vfs.File{Size: 1 << 20})
	fsBare := vfs.NewFSServer(bare)
	s, _, err := BootCold(m, spec, fsBare, GVisorOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if fsBare.OpenGrants() != 0 {
		t.Fatalf("grants = %d on log-less rootfs", fsBare.OpenGrants())
	}
	if _, err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	if got := s.LogWritten(); got != 0 {
		t.Fatalf("log-less sandbox wrote %d bytes", got)
	}
	s.Release()

	// Conventional rootfs with /var/log/<name>.log: grant issued, each
	// request appends, Release returns the grant.
	root := vfs.NewTree()
	root.Add("/app/wrapper", vfs.File{Size: 1 << 20})
	root.Add("/var/log/c-hello.log", vfs.File{LogFile: true})
	fs := vfs.NewFSServer(root)
	m2 := NewMachine(costmodel.Default())
	s2, _, err := BootCold(m2, spec, fs, GVisorOptions(m2))
	if err != nil {
		t.Fatal(err)
	}
	if fs.OpenGrants() != 1 {
		t.Fatalf("open grants = %d, want 1 (the log)", fs.OpenGrants())
	}
	for i := 1; i <= 3; i++ {
		if _, err := s2.Execute(); err != nil {
			t.Fatal(err)
		}
		if got := s2.LogWritten(); got != int64(i)*128 {
			t.Fatalf("after %d requests: log = %d bytes", i, got)
		}
	}
	s2.Release()
	if fs.OpenGrants() != 0 {
		t.Fatalf("grants leaked after release: %d", fs.OpenGrants())
	}
	s2.Release() // idempotent: no double close
}
