// Package sandbox implements the sandbox runtime: the simulated host
// machine, the full cold-boot path of a virtualization-based sandbox
// (configuration parse → process boot → KVM/guest-kernel setup → rootfs
// mounts → task image → application initialization, Figure 2), handler
// execution, func-image construction at the func-entry point, and the
// gVisor-restore baseline (§2.2). Catalyzer's own boot paths build on
// these pieces in internal/core.
package sandbox

import (
	"errors"
	"fmt"

	"catalyzer/internal/costmodel"
	"catalyzer/internal/faults"
	"catalyzer/internal/host"
	"catalyzer/internal/memory"
	"catalyzer/internal/simenv"
	"catalyzer/internal/simtime"
	"catalyzer/internal/workload"
)

// Machine is one simulated host: a virtual clock, physical memory, the
// KVM device, and a host PID allocator. Everything booted on the same
// Machine shares frames (which is what makes overlay-memory sharing and
// PSS observable).
type Machine struct {
	Env     *simenv.Env
	Frames  *memory.FrameTable
	KVM     *host.KVM
	nextPID int
	live    int

	// Faults, when non-nil, is the machine's fault injector; boot paths
	// consult it at each injection site. Nil (the default) is inert.
	Faults *faults.Injector

	// capacityPages bounds host physical memory; zero means unlimited.
	capacityPages int
}

// ErrOutOfMemory is returned when a boot's admission estimate does not
// fit the machine's physical memory.
var ErrOutOfMemory = errors.New("sandbox: machine out of memory")

// NewMachine creates a machine with the given cost model. KVM starts with
// the paper's tuned defaults (PML disabled "for both the baseline and our
// systems", §6.7; the allocation cache stays off until Catalyzer enables
// it).
func NewMachine(cost *costmodel.Model) *Machine {
	env := simenv.New(cost)
	kvm := host.NewKVM(env)
	kvm.PML = false
	return &Machine{
		Env:     env,
		Frames:  memory.NewFrameTable(),
		KVM:     kvm,
		nextPID: 1000,
	}
}

// SpawnProcess allocates a host PID.
func (m *Machine) SpawnProcess() int {
	m.nextPID++
	return m.nextPID
}

// SetMemoryCapacity bounds the machine's physical memory in pages (0 =
// unlimited). Boots perform admission control against it, which is what
// makes the paper's density argument observable: private-memory sandboxes
// exhaust a machine that page-sharing Catalyzer instances do not (§2.2:
// "caching all the functions in memory will introduce high resource
// overhead").
func (m *Machine) SetMemoryCapacity(pages int) { m.capacityPages = pages }

// MemoryCapacity returns the configured capacity in pages (0 =
// unlimited).
func (m *Machine) MemoryCapacity() int { return m.capacityPages }

// AdmitPages checks that n more resident pages fit the machine.
func (m *Machine) AdmitPages(n int) error {
	if m.capacityPages == 0 {
		return nil
	}
	if m.Frames.Live()+n > m.capacityPages {
		return fmt.Errorf("%w: %d live + %d requested > %d capacity",
			ErrOutOfMemory, m.Frames.Live(), n, m.capacityPages)
	}
	return nil
}

// Live returns the number of sandboxes currently alive on the machine,
// including any being booted. Boot paths charge per-running-instance
// interference against it (Figure 15).
func (m *Machine) Live() int { return m.live }

// Now returns the machine's virtual time.
func (m *Machine) Now() simtime.Duration { return m.Env.Now() }

// NativeProfile is the cost profile of running the wrapped program
// directly on the host (Table 2's "Native" column).
func NativeProfile(c *costmodel.Model) workload.Profile {
	return workload.Profile{
		Name:      "native",
		Syscall:   c.SyscallNative,
		Mmap:      c.MmapNative,
		FileOpen:  c.FileOpenNative,
		PageRead:  c.PageReadNative,
		HeapDirty: c.HeapDirtyPage,
	}
}

// GVisorProfile is the cost profile inside a gVisor sandbox: syscalls
// trap to the Sentry, address-space changes update the EPT, and file I/O
// crosses to the Gofer process.
func GVisorProfile(c *costmodel.Model) workload.Profile {
	return workload.Profile{
		Name:      "gvisor",
		Syscall:   c.SyscallGVisor,
		Mmap:      c.MmapGVisor,
		FileOpen:  c.FileOpenGVisor,
		PageRead:  c.PageReadGVisor,
		HeapDirty: c.HeapDirtyPage,
	}
}

// MicroVMProfile is the cost profile inside a microVM running a real
// Linux guest (FireCracker, Hyper Container): near-native syscalls, with
// virtio-backed file I/O somewhat slower than the host.
func MicroVMProfile(c *costmodel.Model) workload.Profile {
	return workload.Profile{
		Name:      "microvm",
		Syscall:   c.SyscallNative + c.SyscallNative/2,
		Mmap:      c.MmapNative + c.MmapNative/2,
		FileOpen:  5 * c.FileOpenNative,
		PageRead:  c.PageReadNative + c.PageReadNative/2,
		HeapDirty: c.HeapDirtyPage,
	}
}

// ContainerProfile is the cost profile inside an OS container (Docker):
// native syscalls with overlayfs adding a little file-open cost.
func ContainerProfile(c *costmodel.Model) workload.Profile {
	return workload.Profile{
		Name:      "container",
		Syscall:   c.SyscallNative,
		Mmap:      c.MmapNative,
		FileOpen:  2 * c.FileOpenNative,
		PageRead:  c.PageReadNative,
		HeapDirty: c.HeapDirtyPage,
	}
}
