package sandbox

import (
	"testing"
	"testing/quick"

	"catalyzer/internal/costmodel"
	"catalyzer/internal/simtime"
	"catalyzer/internal/workload"
)

// Property: every combination of boot options produces a sandbox at its
// func-entry point with positive, phase-consistent boot latency, and the
// pieces requested by the options actually exist.
func TestOptionsMatrixProperty(t *testing.T) {
	f := func(mgmt bool, sentry bool, hwvm bool, guestLinux bool, guestKernel bool, vcpus uint8) bool {
		m := NewMachine(costmodel.Default())
		opts := Options{
			Profile:     ContainerProfile(m.Env.Cost),
			SentryBoot:  sentry,
			HardwareVM:  hwvm,
			GuestKernel: guestKernel,
			VCPUs:       int(vcpus%4) + 1,
		}
		if mgmt {
			opts.Management = m.Env.Cost.DockerCreate
		}
		if guestLinux {
			opts.GuestLinuxBoot = 95 * simtime.Millisecond
		}
		s, tl, err := BootCold(m, workload.MustGet("c-hello"), newRootFS(), opts)
		if err != nil {
			return false
		}
		if !s.AtEntry || tl.Total() <= 0 {
			return false
		}
		// Phase sum equals total by construction of the timeline.
		var sum simtime.Duration
		for _, ph := range tl.Phases() {
			if ph.Duration < 0 {
				return false
			}
			sum += ph.Duration
		}
		if sum != tl.Total() {
			return false
		}
		if hwvm != (s.VM != nil) {
			return false
		}
		if hwvm && s.VM.VCPUs() != opts.VCPUs {
			return false
		}
		if _, ok := tl.PhaseDuration(PhaseSentryBoot); ok != sentry {
			return false
		}
		if _, ok := tl.PhaseDuration(PhaseGuestLinux); ok != guestLinux {
			return false
		}
		if _, ok := tl.PhaseDuration(PhaseManagement); ok != mgmt {
			return false
		}
		s.Release()
		return m.Frames.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteDispatchesSyscallMix(t *testing.T) {
	m := NewMachine(costmodel.Default())
	s, _, err := BootCold(m, workload.MustGet("deathstar-text"), newRootFS(), GVisorOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	d := s.LastSyscalls
	if d == nil {
		t.Fatal("no dispatcher recorded")
	}
	if d.Total() != s.Spec.ExecSyscalls {
		t.Fatalf("dispatched %d syscalls, want %d", d.Total(), s.Spec.ExecSyscalls)
	}
	if d.Count("read") == 0 || d.Count("write") == 0 {
		t.Fatalf("mix missing read/write: %v", d.Names())
	}
	if d.Template {
		t.Fatal("cold-booted sandbox enforcing template policy")
	}
}

func TestBootColdRejectsInvalidSpec(t *testing.T) {
	m := NewMachine(costmodel.Default())
	bad := *workload.MustGet("c-hello")
	bad.ConfigKB = 0
	if _, _, err := BootCold(m, &bad, newRootFS(), GVisorOptions(m)); err == nil {
		t.Fatal("invalid spec booted")
	}
}

func TestExecutionLatencyAcrossBootPathsConverges(t *testing.T) {
	// After the first request warmed a restored instance, subsequent
	// executions cost the same as on a cold-booted one: the demand
	// faults and lazy reconnects are one-time.
	m := NewMachine(costmodel.Default())
	cold, _, err := BootCold(m, workload.MustGet("python-django"), newRootFS(), GVisorOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	img, err := cold.BuildImage()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := cold.Execute()
	if err != nil {
		t.Fatal(err)
	}

	m2 := NewMachine(costmodel.Default())
	restored, _, err := BootGVisorRestore(m2, img, newRootFS(), GVisorOptions(m2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Execute(); err != nil { // first request pays one-time costs
		t.Fatal(err)
	}
	d2, err := restored.Execute()
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(d2-d1) / float64(d1)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.02 {
		t.Fatalf("steady-state exec diverges: cold %v vs restored %v", d1, d2)
	}
}
