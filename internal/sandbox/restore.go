package sandbox

import (
	"fmt"

	"catalyzer/internal/guest"
	"catalyzer/internal/image"
	"catalyzer/internal/simtime"
	"catalyzer/internal/vfs"
	"catalyzer/internal/workload"
)

// BootGVisorRestore implements the gVisor-restore baseline (§2.2,
// Figure 2's lower path): a full sandbox is constructed exactly as in a
// cold boot (management, processes, Sentry, KVM, mounts, task image), and
// then, instead of running application initialization, the guest kernel
// is recovered from the func-image's baseline checkpoint — decompressing
// and deserializing every object one-by-one, loading all application
// memory, and re-doing every I/O connection, all on the critical path.
//lint:allow ctxflow context-first-entry waived: leaf machine work below the recovery layer's abort points; virtual time cannot block on the host
func BootGVisorRestore(m *Machine, img *image.Image, fs *vfs.FSServer, opts Options) (*Sandbox, *simtime.Timeline, error) {
	spec, err := specForImage(img)
	if err != nil {
		return nil, nil, err
	}
	// gVisor-restore loads all application memory privately.
	if err := m.AdmitPages(spec.TaskImagePages + spec.InitHeapPages); err != nil {
		return nil, nil, err
	}
	tl := simtime.NewTimeline(m.Env.Clock)
	s := newShell(m, spec, opts, fs)
	s.Restored = true
	// Release the partial instance on any mid-boot failure.
	fail := func(err error) (*Sandbox, *simtime.Timeline, error) {
		s.Release()
		return nil, nil, err
	}

	if opts.Management > 0 {
		tl.Record(PhaseManagement, opts.Management)
	}
	var cfgErr error
	tl.Measure(PhaseParseConfig, func() {
		cfgErr = ParseConfig(m, spec)
	})
	if cfgErr != nil {
		return fail(cfgErr)
	}
	tl.Measure(PhaseBootProcess, func() {
		m.Env.Charge(m.Env.Cost.HostForkExec)
		m.Env.Charge(m.Env.Cost.HostForkExec)
		m.Env.ChargeN(m.Env.Cost.InstanceInterference, m.Live()-1)
	})
	if opts.SentryBoot {
		tl.Record(PhaseSentryBoot, m.Env.Cost.SentryBoot)
	}
	tl.Measure(PhaseCreateKernel, func() {
		if opts.HardwareVM {
			s.VM = m.KVM.CreateVM()
			for i := 0; i < opts.VCPUs; i++ {
				s.VM.AddVCPU()
			}
			_ = s.VM.SetMemoryRegion(uint64(spec.TaskImagePages + spec.InitHeapPages))
		}
	})
	var stepErr error
	tl.Measure(PhaseMountRootFS, func() {
		// The restored kernel brings its own mount objects; here only the
		// host-side mount work happens.
		for i := 0; i < 1+spec.RootMounts; i++ {
			m.Env.Charge(m.Env.Cost.MountFS)
		}
	})
	tl.Measure(PhaseLoadTaskImage, func() {
		stepErr = mapAndLoadTask(s, opts)
	})
	if stepErr != nil {
		return fail(stepErr)
	}

	// Restore path proper.
	tl.Measure(PhaseRecoverKernel, func() {
		s.Kernel, stepErr = guest.RestoreBaseline(m.Env, img.Kernel)
	})
	if stepErr != nil {
		return fail(fmt.Errorf("sandbox: gvisor-restore: %w", stepErr))
	}
	tl.Measure(PhaseLoadAppMemory, func() {
		stepErr = loadAllAppMemory(s, img)
	})
	if stepErr != nil {
		return fail(stepErr)
	}
	tl.Measure(PhaseReconnectIO, func() {
		s.Kernel.Conns = vfs.RestoreEager(m.Env, img.Kernel.ConnRecords)
		stepErr = s.AcquireLogGrant()
	})
	if stepErr != nil {
		return fail(stepErr)
	}
	tl.Record(PhaseSendRPC, m.Env.Cost.RPCSend)
	s.AtEntry = true
	return s, tl, nil
}

func mapAndLoadTask(s *Sandbox, opts Options) error {
	v := s.taskVMA()
	if err := s.AS.Map(v); err != nil {
		return err
	}
	seed := MemSeed(s.Spec.Name) ^ 0x7a51
	return s.AS.PopulateRange(v.Start, v.End,
		func(page uint64) uint64 { return seed + page },
		func() { s.M.Env.Charge(opts.Profile.PageRead) },
	)
}

// loadAllAppMemory loads the entire memory section into private frames on
// the critical path, decompressing and copying each page (Figure 2's
// "Load App memory": 128.8 ms for SPECjbb's 200 MB).
func loadAllAppMemory(s *Sandbox, img *image.Image) error {
	v := s.heapVMA()
	if v.Pages() == 0 {
		return nil
	}
	if err := s.AS.Map(v); err != nil {
		return err
	}
	return s.AS.PopulateRange(v.Start, v.End,
		func(page uint64) uint64 { return img.Mem.Token(page - v.Start) },
		func() { s.M.Env.Charge(s.M.Env.Cost.PageDecompressCopy) },
	)
}

// specForImage resolves the workload spec a func-image was built from.
// The reproduction keeps specs in the registry; a production system would
// embed the relevant parameters in the image header.
func specForImage(img *image.Image) (*workload.Spec, error) {
	spec, err := workload.Registry(img.Name)
	if err != nil {
		return nil, err
	}
	if uint64(spec.InitHeapPages) != img.Mem.Pages {
		return nil, fmt.Errorf("%w: image %s memory section (%d pages) vs spec (%d)", ErrImageMismatch, img.Name, img.Mem.Pages, spec.InitHeapPages)
	}
	return spec, nil
}
