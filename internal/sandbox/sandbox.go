package sandbox

import (
	"fmt"

	"catalyzer/internal/faults"
	"catalyzer/internal/gort"
	"catalyzer/internal/guest"
	"catalyzer/internal/host"
	"catalyzer/internal/image"
	"catalyzer/internal/memory"
	"catalyzer/internal/oci"
	"catalyzer/internal/simtime"
	"catalyzer/internal/vfs"
	"catalyzer/internal/workload"
)

// Address-space layout, in page numbers.
const (
	// TaskBase is where the wrapper/runtime task image is mapped.
	TaskBase uint64 = 0x1000
	// HeapBase is where the application heap begins.
	HeapBase uint64 = 0x100000
)

// Boot phase names, shared with the experiment harness (Figure 2's
// breakdown uses them directly).
const (
	PhaseManagement    = "container-management"
	PhaseParseConfig   = "parse-configuration"
	PhaseBootProcess   = "boot-sandbox-process"
	PhaseSentryBoot    = "sentry-boot"
	PhaseGuestLinux    = "guest-kernel-boot"
	PhaseCreateKernel  = "create-kernel-platform"
	PhaseMountRootFS   = "mount-rootfs"
	PhaseLoadTaskImage = "load-task-image"
	PhaseAppInit       = "application-init"
	PhaseRecoverKernel = "recover-kernel"
	PhaseLoadAppMemory = "load-app-memory"
	PhaseReconnectIO   = "reconnect-io"
	PhaseSendRPC       = "send-rpc"
	// Catalyzer phases (internal/core).
	PhaseZygoteSpecialize = "zygote-specialize"
	PhaseMapImage         = "map-func-image"
	PhaseSfork            = "sfork"
)

// ParseConfig performs the gateway's configuration step: the function's
// OCI-style document (written at deploy time) is parsed and validated,
// and the parse cost is charged per real document kilobyte (Figure 2's
// "Parse Configuration").
func ParseConfig(m *Machine, spec *workload.Spec) error {
	_, data, err := oci.Generate(spec)
	if err != nil {
		return fmt.Errorf("sandbox: config for %s: %w", spec.Name, err)
	}
	if _, err := oci.Parse(data); err != nil {
		return fmt.Errorf("sandbox: config for %s: %w", spec.Name, err)
	}
	m.Env.ChargeN(m.Env.Cost.ConfigParsePerKB, (len(data)+1023)/1024)
	return nil
}

// MemSeed derives the deterministic heap-content seed of a function, so a
// cold-booted instance, its func-image, and every restored instance agree
// on page contents.
func MemSeed(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h | 1
}

// KernelSeed derives the guest-kernel object-graph seed.
func KernelSeed(name string) uint64 { return MemSeed(name) ^ 0xabcdef }

// baseKernelObjects is the Sentry's object population before any
// application work (task hierarchy roots, initial sessions, platform
// bookkeeping).
const baseKernelObjects = 1500

// Options selects which pieces of the cold-boot path a sandbox
// technology performs.
type Options struct {
	// Profile is the in-sandbox cost profile for application work.
	Profile workload.Profile
	// Management is the container/VM management overhead charged before
	// anything else (runsc create, dockerd, hyperd).
	Management simtime.Duration
	// SentryBoot pays the user-space guest kernel binary startup.
	SentryBoot bool
	// HardwareVM creates a KVM VM with VCPUs and memory regions.
	HardwareVM bool
	// GuestLinuxBoot is the in-VM Linux kernel boot time (FireCracker's
	// minimized kernel, Hyper's guest).
	GuestLinuxBoot simtime.Duration
	// GuestKernel constructs the user-space guest kernel object graph
	// (gVisor-like designs). OS containers and real-Linux microVMs skip
	// it.
	GuestKernel bool
	// VCPUs to create when HardwareVM is set.
	VCPUs int
}

// GVisorOptions is the baseline gVisor cold-boot configuration.
func GVisorOptions(m *Machine) Options {
	return Options{
		Profile:     GVisorProfile(m.Env.Cost),
		Management:  m.Env.Cost.SandboxManagement,
		SentryBoot:  true,
		HardwareVM:  true,
		GuestKernel: true,
		VCPUs:       1,
	}
}

// Sandbox is one function instance: the composition of a guest kernel,
// an address space, host-side tables, an overlay rootFS and a modelled Go
// runtime, executing one workload.
type Sandbox struct {
	M    *Machine
	Spec *workload.Spec
	Opts Options

	Kernel  *guest.Kernel
	AS      *memory.AddressSpace
	VM      *host.VM
	FDs     *host.FDTable
	NS      *host.Namespaces
	Overlay *vfs.OverlayFS
	Runtime *gort.Runtime

	HostPID, VPID int

	// Cache records post-boot connection uses; after a cold boot it
	// becomes the function's I/O cache (§3.3).
	Cache *vfs.IOCache

	// AtEntry is true once the sandbox reached the func-entry point and
	// has not served a request yet.
	AtEntry bool

	// Restored marks instances booted from a func-image or template (so
	// execution pays demand/CoW faults instead of having hot pages).
	Restored bool

	// LayoutDelta is the ASLR page offset applied to the standard
	// address-space layout (§6.8 re-randomization on sfork).
	LayoutDelta uint64

	// FromTemplate marks sforked instances: their guest kernel enforces
	// the template-sandbox syscall classification (Table 1).
	FromTemplate bool

	// Lineage is the sfork family this sandbox belongs to: the template
	// sandbox and its children share one Lineage, so correlated child
	// failures can convict the template (nil for non-fork boots).
	Lineage *Lineage

	// Wedged marks a post-boot instance that stopped responding; set by
	// liveness probes (Probe) drawing the sandbox-wedge fault site.
	Wedged bool

	// Poisoned marks state inherited from a poisoned template: the
	// instance boots fine and fails at execution (SiteTemplatePoison).
	Poisoned bool

	// logGrant is the read-write descriptor for the function's log file
	// (§4.2: "Catalyzer allows the FS server to grant some file
	// descriptors of the log files ... to sandboxes"). Zero when the
	// rootfs has no log file.
	logGrant int

	// LastSyscalls is the dispatcher of the most recent Execute, for
	// inspection.
	LastSyscalls *guest.Dispatcher

	released bool
}

// newShell constructs the common sandbox scaffolding (no boot costs).
func newShell(m *Machine, spec *workload.Spec, opts Options, fs *vfs.FSServer) *Sandbox {
	s := &Sandbox{
		M:       m,
		Spec:    spec,
		Opts:    opts,
		AS:      memory.NewAddressSpace(m.Env, m.Frames),
		FDs:     host.NewFDTable(m.Env),
		NS:      host.NewNamespaces(),
		Overlay: vfs.NewOverlayFS(fs),
		Cache:   vfs.NewIOCache(),
	}
	s.HostPID = m.SpawnProcess()
	s.VPID = s.NS.PID.Register(s.HostPID)
	m.live++
	return s
}

// heapVMA returns the sandbox's heap VMA at its randomized base.
func (s *Sandbox) heapVMA() memory.VMA {
	return memory.VMA{
		Name:  "heap",
		Start: HeapBase + s.LayoutDelta,
		End:   HeapBase + s.LayoutDelta + uint64(s.Spec.InitHeapPages),
	}
}

func (s *Sandbox) taskVMA() memory.VMA {
	return memory.VMA{
		Name:  "task-image",
		Start: TaskBase + s.LayoutDelta,
		End:   TaskBase + s.LayoutDelta + uint64(s.Spec.TaskImagePages),
	}
}

// HeapStart returns the first heap page number (tests observe layout
// randomization through it).
func (s *Sandbox) HeapStart() uint64 { return HeapBase + s.LayoutDelta }

// Rebase applies an ASLR shift to the whole address space.
func (s *Sandbox) Rebase(delta uint64) {
	s.AS.Rebase(delta)
	s.LayoutDelta += delta
}

// BootCold performs the full from-scratch boot of Figure 2's upper path:
// every phase is measured on the returned timeline, and the sandbox ends
// at its func-entry point.
//lint:allow ctxflow context-first-entry waived: leaf machine work below the recovery layer's abort points; virtual time cannot block on the host
func BootCold(m *Machine, spec *workload.Spec, fs *vfs.FSServer, opts Options) (*Sandbox, *simtime.Timeline, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	// Cold boots populate the full task image and heap privately.
	if err := m.AdmitPages(spec.TaskImagePages + spec.InitHeapPages); err != nil {
		return nil, nil, err
	}
	tl := simtime.NewTimeline(m.Env.Clock)
	s := newShell(m, spec, opts, fs)
	// A boot that dies mid-way must not leak the partially-built
	// instance: every error return releases the shell.
	fail := func(err error) (*Sandbox, *simtime.Timeline, error) {
		s.Release()
		return nil, nil, err
	}

	if opts.Management > 0 {
		tl.Record(PhaseManagement, opts.Management)
	}
	var cfgErr error
	tl.Measure(PhaseParseConfig, func() {
		cfgErr = ParseConfig(m, spec)
	})
	if cfgErr != nil {
		return fail(cfgErr)
	}
	tl.Measure(PhaseBootProcess, func() {
		// The sandbox process and the I/O (Gofer) process, slowed by
		// per-running-instance host interference (Figure 15).
		m.Env.Charge(m.Env.Cost.HostForkExec)
		m.Env.Charge(m.Env.Cost.HostForkExec)
		m.Env.ChargeN(m.Env.Cost.InstanceInterference, m.Live()-1)
	})
	if opts.SentryBoot {
		tl.Record(PhaseSentryBoot, m.Env.Cost.SentryBoot)
	}
	if opts.GuestLinuxBoot > 0 {
		tl.Record(PhaseGuestLinux, opts.GuestLinuxBoot)
	}
	tl.Measure(PhaseCreateKernel, func() {
		if opts.HardwareVM {
			s.VM = m.KVM.CreateVM()
			for i := 0; i < opts.VCPUs; i++ {
				s.VM.AddVCPU()
			}
			// One region covering task image + heap.
			_ = s.VM.SetMemoryRegion(uint64(spec.TaskImagePages + spec.InitHeapPages))
		}
		baseObjs := 30
		if opts.GuestKernel {
			baseObjs = baseKernelObjects
		}
		s.Kernel = guest.NewKernel(m.Env, KernelSeed(spec.Name), baseObjs)
	})
	var mountErr error
	tl.Measure(PhaseMountRootFS, func() {
		mountErr = s.mountRootFS(fs)
	})
	if mountErr != nil {
		return fail(mountErr)
	}
	var bootErr error
	tl.Measure(PhaseLoadTaskImage, func() {
		bootErr = s.loadTaskImage(opts.Profile)
	})
	if bootErr != nil {
		return fail(bootErr)
	}
	tl.Measure(PhaseAppInit, func() {
		bootErr = s.runAppInit(opts.Profile)
	})
	if bootErr != nil {
		return fail(bootErr)
	}
	tl.Record(PhaseSendRPC, m.Env.Cost.RPCSend)
	s.AtEntry = true
	return s, tl, nil
}

func (s *Sandbox) mountRootFS(fs *vfs.FSServer) error {
	if err := s.Kernel.Mount(vfs.Mount{Target: "/", FSType: "rootfs", Tree: fs.Root()}); err != nil {
		return err
	}
	for i := 0; i < s.Spec.RootMounts; i++ {
		tree := vfs.NewTree()
		if err := s.Kernel.Mount(vfs.Mount{Target: fmt.Sprintf("/mnt/%d", i), FSType: "bind", Tree: tree}); err != nil {
			return err
		}
	}
	return nil
}

// loadTaskImage maps and reads the wrapper/runtime binary from the
// rootfs (Figure 2's "Load task image": 19.9 ms for the JVM).
func (s *Sandbox) loadTaskImage(p workload.Profile) error {
	v := s.taskVMA()
	if err := s.AS.Map(v); err != nil {
		return err
	}
	seed := MemSeed(s.Spec.Name) ^ 0x7a51
	return s.AS.PopulateRange(v.Start, v.End,
		func(page uint64) uint64 { return seed + page },
		func() { s.M.Env.Charge(p.PageRead) },
	)
}

// runAppInit executes the wrapped program's initialization up to the
// func-entry point: runtime bootstrap, library/class loading, heap
// dirtying, guest-kernel object creation and I/O connection opening.
func (s *Sandbox) runAppInit(p workload.Profile) error {
	env := s.M.Env
	spec := s.Spec

	// CPU + syscalls + mmaps + file loads.
	env.Charge(spec.InitCost(p))

	// Heap pages are dirtied one by one; contents follow the function's
	// deterministic memory seed so func-images capture exactly this
	// state.
	v := s.heapVMA()
	if spec.InitHeapPages > 0 {
		if err := s.AS.Map(v); err != nil {
			return err
		}
		mem := image.Memory{Pages: uint64(spec.InitHeapPages), Seed: MemSeed(spec.Name)}
		if err := s.AS.PopulateRange(v.Start, v.End,
			func(page uint64) uint64 { return mem.Token(page - v.Start) },
			func() { env.Charge(p.HeapDirty) },
		); err != nil {
			return err
		}
	}

	// The Go runtime of the wrapped program: scheduling threads plus one
	// blocking thread per socket connection.
	nsched := spec.KernelThreads / 8
	if nsched < 1 {
		nsched = 1
	}
	s.Runtime = gort.New(env, nsched)

	// Guest-kernel population up to the spec's totals. The wrapped
	// program runs as a child task of the init task; its threads and
	// timers hang off that task so the recovered hierarchy is typed
	// system state, not opaque bytes.
	k := s.Kernel
	appTask, err := k.NewTask(0)
	if err != nil {
		return err
	}
	for k.KindCount(guest.KindThread) < spec.KernelThreads {
		if _, err := k.NewThread(appTask); err != nil {
			return err
		}
	}
	for i := 0; k.KindCount(guest.KindTimer) < spec.KernelTimers; i++ {
		if _, err := k.NewTimer(appTask, uint16(10+(i%50)*10)); err != nil {
			return err
		}
	}
	k.CreateObjects(guest.KindFD, len(spec.Conns))
	if rest := spec.KernelObjects - k.ObjectCount(); rest > 0 {
		k.CreateObjects(guest.KindMisc, rest)
	}

	// Persistent log file: the FS server grants a read-write descriptor
	// (§4.2); most files stay read-only.
	if err := s.acquireLogGrant(); err != nil {
		return err
	}

	// Open the function's I/O connections; socket connections keep a
	// dedicated blocking OS thread (§4.1).
	for _, c := range spec.Conns {
		k.Conns.Open(c.Kind, c.Path)
		if c.Kind == vfs.ConnSocket {
			if _, err := s.Runtime.SpawnBlocking("conn:" + c.Path); err != nil {
				return err
			}
		}
	}
	return nil
}

// logPath returns the function's conventional log file path.
func (s *Sandbox) logPath() string { return "/var/log/" + s.Spec.Name + ".log" }

// acquireLogGrant requests the read-write log descriptor from the FS
// server, if the rootfs carries a log file.
func (s *Sandbox) acquireLogGrant() error {
	srv := s.Overlay.Server()
	if f, ok := srv.Root().Lookup(s.logPath()); !ok || !f.LogFile {
		return nil
	}
	g, err := srv.Open(s.logPath(), vfs.GrantReadWrite)
	if err != nil {
		return err
	}
	s.logGrant = g.ID
	return nil
}

// AcquireLogGrant re-grants the log descriptor for a restored or sforked
// sandbox ("only a small number of persistent files are copied", §4.2).
// It is a no-op when the function has no log file.
func (s *Sandbox) AcquireLogGrant() error {
	s.M.Env.Charge(s.M.Env.Cost.FileOpenGVisor)
	return s.acquireLogGrant()
}

// LogWritten reports the bytes this function's instances have logged.
func (s *Sandbox) LogWritten() int64 {
	return s.Overlay.Server().Written(s.logPath())
}

// Execute serves one request: handler compute and syscalls, touching the
// execution working set (paying demand/CoW faults when restored), and
// using the function's hot connections (paying lazy reconnects when
// pending). It returns the execution latency.
func (s *Sandbox) Execute() (simtime.Duration, error) {
	if s.released {
		return 0, fmt.Errorf("%w: execute on %s", ErrReleased, s.Spec.Name)
	}
	if s.Wedged {
		return 0, fmt.Errorf("%w: execute on %s", ErrWedged, s.Spec.Name)
	}
	if s.Poisoned {
		// Inherited template state is latently bad: the boot succeeded,
		// the handler does not. The platform's lineage bookkeeping turns
		// correlated failures like this one into a template verdict.
		return 0, fmt.Errorf("%w: execute on %s", ErrPoisoned, s.Spec.Name)
	}
	env := s.M.Env
	start := env.Now()

	// Handler compute, then its syscalls one by one through the guest
	// kernel's dispatch layer (which enforces the template-sandbox
	// syscall policy for fork-booted instances).
	env.Charge(s.Spec.ExecComputeCost())
	d := guest.NewDispatcher(env, s.Opts.Profile.Syscall, s.FromTemplate)
	if err := d.DispatchExecMix(s.Spec.ExecSyscalls); err != nil {
		return 0, err
	}
	s.LastSyscalls = d

	// Touch the execution working set: reads then writes on the first
	// ExecPages heap pages.
	v := s.heapVMA()
	for i := 0; i < s.Spec.ExecPages; i++ {
		page := v.Start + uint64(i)
		if _, err := s.AS.Read(page); err != nil {
			return 0, err
		}
		if i%4 == 0 { // a quarter of the working set is written
			if err := s.AS.Write(page, uint64(env.Now())|1); err != nil {
				return 0, err
			}
		}
	}

	// Deterministic startup I/O: the function's hot connections are used
	// right after boot, and those uses populate the I/O cache (§3.3).
	// Pending connections pay their re-do on first use.
	conns := s.Kernel.Conns.Conns()
	hot := 0
	for i, cs := range s.Spec.Conns {
		if !cs.Hot || i >= len(conns) {
			continue
		}
		if _, err := s.Kernel.Conns.Use(conns[i].ID); err != nil {
			return 0, err
		}
		s.Cache.RecordUse(conns[i].Path, hot%3 == 0)
		hot++
	}
	// Plus ExecConns request-dependent (non-deterministic) connections
	// from the non-hot remainder; these never enter the cache.
	extra := 0
	for i, cs := range s.Spec.Conns {
		if cs.Hot || i >= len(conns) || extra >= s.Spec.ExecConns {
			continue
		}
		if _, err := s.Kernel.Conns.Use(conns[i].ID); err != nil {
			return 0, err
		}
		extra++
	}
	// Each request appends an entry to the persistent log through the
	// read-write grant.
	if s.logGrant != 0 {
		if err := s.Overlay.Server().Append(s.logGrant, 128); err != nil {
			return 0, err
		}
	}

	s.AtEntry = false
	return env.Now() - start, nil
}

// BuildImage captures the sandbox at its func-entry point into a
// func-image (offline func-image compilation, §5). The sandbox must not
// have served requests yet.
func (s *Sandbox) BuildImage() (*image.Image, error) {
	if !s.AtEntry {
		return nil, fmt.Errorf("%w: BuildImage on %s", ErrNotAtEntry, s.Spec.Name)
	}
	cp, err := s.Kernel.Capture()
	if err != nil {
		return nil, err
	}
	img := &image.Image{
		Name:     s.Spec.Name,
		Language: string(s.Spec.Language),
		Entry:    s.Spec.Name + "#handler",
		Mem:      image.Memory{Pages: uint64(s.Spec.InitHeapPages), Seed: MemSeed(s.Spec.Name)},
		Kernel:   cp,
	}
	if s.Cache.Len() > 0 {
		img.IOCache = s.Cache
	}
	return img, nil
}

// NewRestoredShell constructs the scaffolding of a restore-based sandbox
// for Catalyzer's boot paths (internal/core); no boot costs are charged.
func NewRestoredShell(m *Machine, spec *workload.Spec, opts Options, fs *vfs.FSServer) *Sandbox {
	s := newShell(m, spec, opts, fs)
	s.Restored = true
	return s
}

// SetVM attaches the hardware VM created by a boot path.
func (s *Sandbox) SetVM(vm *host.VM) { s.VM = vm }

// SetKernel attaches the restored guest kernel.
func (s *Sandbox) SetKernel(k *guest.Kernel) { s.Kernel = k }

// MapImageHeap maps the function's heap VMA over a shared image backing
// (overlay memory, §3.1): no pages are loaded until faulted.
func (s *Sandbox) MapImageHeap(backing memory.Backing) error {
	v := s.heapVMA()
	if v.Pages() == 0 {
		return nil
	}
	v.Backing = backing
	return s.AS.Map(v)
}

// LoadAllHeap eagerly loads the full memory section from the image
// (decompress + copy per page), the non-overlay ablation path.
func (s *Sandbox) LoadAllHeap(img *image.Image) error {
	v := s.heapVMA()
	if v.Pages() == 0 {
		return nil
	}
	if err := s.AS.Map(v); err != nil {
		return err
	}
	return s.AS.PopulateRange(v.Start, v.End,
		func(page uint64) uint64 { return img.Mem.Token(page - v.Start) },
		func() { s.M.Env.Charge(s.M.Env.Cost.PageDecompressCopy) },
	)
}

// ReplaceAddressSpace swaps in a cloned address space (sfork), releasing
// the shell's empty one.
func (s *Sandbox) ReplaceAddressSpace(as *memory.AddressSpace) {
	s.AS.Release()
	s.AS = as
}

// Release frees the sandbox's host resources.
func (s *Sandbox) Release() {
	if s.released {
		return
	}
	s.released = true
	if s.logGrant != 0 {
		_ = s.Overlay.Server().Close(s.logGrant)
		s.logGrant = 0
	}
	if s.Lineage != nil {
		s.Lineage.ReleaseChild(s.HostPID)
	}
	s.AS.Release()
	s.M.live--
}

// Probe performs one liveness check (machine lock held by the caller —
// a probe is machine work and charges one RPC round-trip). It draws the
// sandbox-wedge site on healthy instances — firing wedges the instance
// from this probe on — and the probe-false-negative site on wedged
// ones, where firing makes the probe lie and report healthy. It returns
// whether the instance should be considered healthy; a released
// instance is not.
func (s *Sandbox) Probe() bool {
	if s.released {
		return false
	}
	s.M.Env.Charge(s.M.Env.Cost.RPCSend)
	if !s.Wedged {
		if s.M.Faults.Check(faults.SiteSandboxWedge) != nil {
			s.Wedged = true
		}
	}
	if s.Wedged {
		if s.M.Faults.Check(faults.SiteProbeFalseNegative) != nil {
			return true // the probe missed the wedge this round
		}
		return false
	}
	return true
}

// Released reports whether the sandbox has been torn down.
func (s *Sandbox) Released() bool { return s.released }
