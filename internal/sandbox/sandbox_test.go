package sandbox

import (
	"testing"

	"catalyzer/internal/costmodel"
	"catalyzer/internal/simtime"
	"catalyzer/internal/vfs"
	"catalyzer/internal/workload"
)

func newRootFS() *vfs.FSServer {
	root := vfs.NewTree()
	root.Add("/app/wrapper", vfs.File{Size: 1 << 20})
	root.Add("/var/log/fn.log", vfs.File{LogFile: true})
	return vfs.NewFSServer(root)
}

func bootGVisor(t testing.TB, name string) (*Machine, *Sandbox, *simtime.Timeline) {
	t.Helper()
	m := NewMachine(costmodel.Default())
	s, tl, err := BootCold(m, workload.MustGet(name), newRootFS(), GVisorOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	return m, s, tl
}

func TestGVisorColdBootCHello(t *testing.T) {
	_, s, tl := bootGVisor(t, "c-hello")
	total := tl.Total()
	// §2.2: "142ms startup latency in gVisor" for C.
	if total < 130*simtime.Millisecond || total > 170*simtime.Millisecond {
		t.Fatalf("gVisor c-hello boot = %v, want ~142ms", total)
	}
	if !s.AtEntry {
		t.Fatal("sandbox not at func-entry after boot")
	}
	if s.Kernel.ObjectCount() != s.Spec.KernelObjects {
		t.Fatalf("kernel objects = %d, want %d", s.Kernel.ObjectCount(), s.Spec.KernelObjects)
	}
	if s.Kernel.Conns.Len() != len(s.Spec.Conns) {
		t.Fatalf("conns = %d, want %d", s.Kernel.Conns.Len(), len(s.Spec.Conns))
	}
}

func TestGVisorColdBootSPECjbb(t *testing.T) {
	_, s, tl := bootGVisor(t, "java-specjbb")
	total := tl.Total()
	// gVisor SPECjbb ≈ 1.9-2s (Figure 6); app init ≈ 1850ms (Figure 2).
	if total < 1700*simtime.Millisecond || total > 2300*simtime.Millisecond {
		t.Fatalf("gVisor SPECjbb boot = %v, want ~2s", total)
	}
	appInit, ok := tl.PhaseDuration(PhaseAppInit)
	if !ok || appInit < 1600*simtime.Millisecond || appInit > 2100*simtime.Millisecond {
		t.Fatalf("app init = %v, want ~1850ms (Figure 2)", appInit)
	}
	taskLoad, _ := tl.PhaseDuration(PhaseLoadTaskImage)
	if taskLoad < 15*simtime.Millisecond || taskLoad > 25*simtime.Millisecond {
		t.Fatalf("task image load = %v, want ~19.9ms (Figure 2)", taskLoad)
	}
	if s.Kernel.ObjectCount() != 37838 {
		t.Fatalf("kernel objects = %d, want 37838", s.Kernel.ObjectCount())
	}
	// 200MB of heap resident.
	if rss := s.AS.RSS(); rss < 200<<20 {
		t.Fatalf("RSS = %d, want >= 200MB", rss)
	}
}

func TestBootPhasesOrdered(t *testing.T) {
	_, _, tl := bootGVisor(t, "java-hello")
	var names []string
	for _, p := range tl.Phases() {
		names = append(names, p.Name)
	}
	want := []string{PhaseManagement, PhaseParseConfig, PhaseBootProcess, PhaseSentryBoot,
		PhaseCreateKernel, PhaseMountRootFS, PhaseLoadTaskImage, PhaseAppInit, PhaseSendRPC}
	if len(names) != len(want) {
		t.Fatalf("phases = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("phase %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestExecuteColdHasNoFaultPenalty(t *testing.T) {
	_, s, _ := bootGVisor(t, "deathstar-text")
	d, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// Cold-booted instance: pages hot, conns open → execution ≈ ExecCost.
	base := s.Spec.ExecCost(s.Opts.Profile)
	if d < base || d > base+base/2 {
		t.Fatalf("exec = %v, want ≈ %v", d, base)
	}
	if s.AS.Stats().CoWFaults != 0 {
		t.Fatalf("cold exec caused %d CoW faults", s.AS.Stats().CoWFaults)
	}
	// DeathStar execution stays under 2.5ms (Figure 13a).
	if d > 2500*simtime.Microsecond {
		t.Fatalf("DeathStar exec = %v, want < 2.5ms", d)
	}
}

func TestExecutePopulatesIOCache(t *testing.T) {
	_, s, _ := bootGVisor(t, "java-specjbb")
	if _, err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	if got := s.Cache.Len(); got != s.Spec.HotConns() {
		t.Fatalf("I/O cache entries = %d, want %d hot conns", got, s.Spec.HotConns())
	}
	// Table 3: SPECjbb I/O cache ≈ 2.4 KB.
	if b := s.Cache.Bytes(); b < 2200 || b > 2700 {
		t.Fatalf("I/O cache bytes = %d, want ~2400 (Table 3)", b)
	}
}

func TestBuildImageRequiresEntry(t *testing.T) {
	_, s, _ := bootGVisor(t, "c-hello")
	if _, err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BuildImage(); err == nil {
		t.Fatal("BuildImage succeeded after execution")
	}
}

func TestBuildImageCapturesState(t *testing.T) {
	_, s, _ := bootGVisor(t, "c-nginx")
	img, err := s.BuildImage()
	if err != nil {
		t.Fatal(err)
	}
	if img.Name != "c-nginx" || img.Mem.Pages != uint64(s.Spec.InitHeapPages) {
		t.Fatalf("image identity: %+v", img)
	}
	if len(img.Kernel.ConnRecords) != len(s.Spec.Conns) {
		t.Fatalf("image conns = %d", len(img.Kernel.ConnRecords))
	}
	// Metadata region sized per Table 3 (~165.5KB for Nginx's 9200 objects).
	kb := float64(img.MetadataBytes()) / 1024
	if kb < 120 || kb > 220 {
		t.Fatalf("nginx metadata = %.1fKB, want ~165KB", kb)
	}
}

func TestGVisorRestoreBoot(t *testing.T) {
	// Build the image on one machine (offline)...
	m1, s1, _ := bootGVisor(t, "java-specjbb")
	if _, err := s1.Execute(); err != nil {
		t.Fatal(err)
	}
	s1.AtEntry = true // rewind for capture; capture requires entry state
	img, err := s1.BuildImage()
	if err != nil {
		t.Fatal(err)
	}
	_ = m1

	// ...restore on a fresh machine.
	m2 := NewMachine(costmodel.Default())
	s2, tl, err := BootGVisorRestore(m2, img, newRootFS(), GVisorOptions(m2))
	if err != nil {
		t.Fatal(err)
	}
	total := tl.Total()
	// Figure 6: gVisor-restore SPECjbb ≈ 400ms.
	if total < 330*simtime.Millisecond || total > 500*simtime.Millisecond {
		t.Fatalf("gvisor-restore SPECjbb = %v, want ~400ms", total)
	}
	recover, _ := tl.PhaseDuration(PhaseRecoverKernel)
	if recover < 45*simtime.Millisecond || recover > 80*simtime.Millisecond {
		t.Fatalf("recover kernel = %v, want ~57ms (Figure 2)", recover)
	}
	mem, _ := tl.PhaseDuration(PhaseLoadAppMemory)
	if mem < 110*simtime.Millisecond || mem > 150*simtime.Millisecond {
		t.Fatalf("load app memory = %v, want ~129ms (Figure 2)", mem)
	}
	io, _ := tl.PhaseDuration(PhaseReconnectIO)
	if io < 60*simtime.Millisecond || io > 95*simtime.Millisecond {
		t.Fatalf("reconnect io = %v, want ~79ms (Figure 2)", io)
	}
	// Restored kernel state matches the checkpointed one.
	if s2.Kernel.Signature() != s1.Kernel.Signature() {
		t.Fatal("restored kernel differs from captured kernel")
	}
	// Restored memory contents match.
	v := s2.heapVMA()
	got, err := s2.AS.Read(v.Start + 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != img.Mem.Token(7) {
		t.Fatal("restored page content mismatch")
	}
	// Execution works on the restored instance.
	if _, err := s2.Execute(); err != nil {
		t.Fatal(err)
	}
}

func TestGVisorRestoreFasterThanColdForHeavyApps(t *testing.T) {
	for _, name := range []string{"java-specjbb", "python-django", "java-hello"} {
		mc := NewMachine(costmodel.Default())
		_, tlCold, err := BootCold(mc, workload.MustGet(name), newRootFS(), GVisorOptions(mc))
		if err != nil {
			t.Fatal(err)
		}
		mi := NewMachine(costmodel.Default())
		si, _, err := BootCold(mi, workload.MustGet(name), newRootFS(), GVisorOptions(mi))
		if err != nil {
			t.Fatal(err)
		}
		img, err := si.BuildImage()
		if err != nil {
			t.Fatal(err)
		}
		mr := NewMachine(costmodel.Default())
		_, tlRestore, err := BootGVisorRestore(mr, img, newRootFS(), GVisorOptions(mr))
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(tlCold.Total()) / float64(tlRestore.Total())
		// §2.2: gVisor-restore achieves 2x-5x speedup over gVisor.
		if ratio < 1.8 || ratio > 7 {
			t.Errorf("%s: restore speedup = %.1fx, want 2x-5x", name, ratio)
		}
	}
}

func TestRestoreRejectsMismatchedImage(t *testing.T) {
	m, s, _ := bootGVisor(t, "c-hello")
	img, err := s.BuildImage()
	if err != nil {
		t.Fatal(err)
	}
	img.Name = "no-such-workload"
	if _, _, err := BootGVisorRestore(m, img, newRootFS(), GVisorOptions(m)); err == nil {
		t.Fatal("restore accepted image for unknown workload")
	}
	img.Name = "c-nginx" // exists but wrong memory geometry
	if _, _, err := BootGVisorRestore(m, img, newRootFS(), GVisorOptions(m)); err == nil {
		t.Fatal("restore accepted image with mismatched memory section")
	}
}

func TestReleaseFreesMemory(t *testing.T) {
	m, s, _ := bootGVisor(t, "c-hello")
	if m.Frames.Live() == 0 {
		t.Fatal("no frames live after boot")
	}
	s.Release()
	if m.Frames.Live() != 0 {
		t.Fatalf("%d frames leaked after release", m.Frames.Live())
	}
	if _, err := s.Execute(); err == nil {
		t.Fatal("execute on released sandbox succeeded")
	}
	s.Release() // idempotent
}

func TestDockerLikeBootSkipsGuestKernel(t *testing.T) {
	m := NewMachine(costmodel.Default())
	opts := Options{
		Profile:    ContainerProfile(m.Env.Cost),
		Management: m.Env.Cost.DockerCreate,
	}
	s, tl, err := BootCold(m, workload.MustGet("java-hello"), newRootFS(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.VM != nil {
		t.Fatal("container boot created a hardware VM")
	}
	// Docker Java-hello ≈ 105ms create + ~90ms native-ish init.
	total := tl.Total()
	if total < 150*simtime.Millisecond || total > 320*simtime.Millisecond {
		t.Fatalf("docker java-hello = %v, want ~200ms", total)
	}
	// Guest kernel object population is tiny for containers.
	if s.Kernel.ObjectCount() != s.Spec.KernelObjects {
		// Containers still track the spec's objects (host-side state),
		// so restore comparisons stay meaningful.
		t.Fatalf("kernel objects = %d", s.Kernel.ObjectCount())
	}
}

func TestMemSeedStable(t *testing.T) {
	if MemSeed("a") == MemSeed("b") {
		t.Fatal("different names share seeds")
	}
	if MemSeed("x") != MemSeed("x") {
		t.Fatal("seed not deterministic")
	}
	if MemSeed("x")&1 != 1 {
		t.Fatal("seed must be odd")
	}
}
