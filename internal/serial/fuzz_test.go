package serial

import (
	"testing"
)

// FuzzDecodeBaseline hardens the restore path against malformed
// checkpoint streams: decoding must never panic, and successful decodes
// must re-encode to a stream that decodes to the same graph.
func FuzzDecodeBaseline(f *testing.F) {
	for _, n := range []int{1, 20, 200} {
		data, _, err := EncodeBaseline(genGraph(n, int64(n)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not flate"))

	f.Fuzz(func(t *testing.T, data []byte) {
		objs, _, err := DecodeBaseline(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		re, _, err := EncodeBaseline(objs)
		if err != nil {
			// Decoded objects may have non-dense IDs; the encoder must
			// reject them cleanly rather than crash.
			return
		}
		again, _, err := DecodeBaseline(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !Equal(objs, again) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}

// FuzzDecodeRecords hardens the mapped-records path: arbitrary region
// bytes with arbitrary indices must never panic.
func FuzzDecodeRecords(f *testing.F) {
	rec, _, err := EncodeRecords(genGraph(50, 3))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rec.Region, uint16(len(rec.Index)))
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{1, 2, 3}, uint16(9))

	f.Fuzz(func(t *testing.T, region []byte, nidx uint16) {
		r := &Records{Region: region}
		step := 1
		if len(region) > 0 && int(nidx) > 0 {
			step = len(region)/int(nidx) + 1
		}
		for off := 0; off < len(region) && len(r.Index) < int(nidx); off += step {
			r.Index = append(r.Index, uint64(off))
		}
		_, _ = DecodeRecords(r) // must not panic
	})
}
