// Package serial implements the two checkpoint serialization formats the
// paper contrasts (§3.2):
//
//   - The baseline format used by gVisor-restore: every guest-kernel
//     metadata object is serialized into a self-describing record and the
//     whole stream is flate-compressed. Restore must decompress and then
//     deserialize objects one-by-one, resolving pointer fields through an
//     ID map — the per-object work that costs >50 ms for SPECjbb's 37,838
//     objects.
//
//   - Catalyzer's partially-deserialized format: records are laid out
//     contiguously and uncompressed so they can be mapped back into memory
//     with a single mmap; pointer fields are zeroed placeholders, and a
//     relation table records (slot offset → target index) pairs. Restore
//     is a map plus an embarrassingly parallel fixup pass over the
//     relation table.
//
// This package does the real byte-level work — tests verify the two
// formats are interchangeable (graph-isomorphic round trips) and the
// root-level benchmarks measure their real CPU asymmetry.
package serial

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ObjectID identifies a guest-kernel object within one checkpoint. IDs are
// dense indices assigned at capture time; 0 is a valid ID. IDs are 32-bit
// because the record wire format is deliberately compact: the paper's
// Table 3 reports ~18 bytes of metadata per object (680.6 KB for
// SPECjbb's 37,838 objects).
type ObjectID uint32

// NilRef marks an absent pointer field.
const NilRef = ObjectID(^uint32(0))

// Object is one guest-kernel metadata object: an opaque payload plus
// pointer fields referencing other objects.
type Object struct {
	ID      ObjectID
	Kind    uint8
	Payload []byte
	Refs    []ObjectID
}

// clone returns a deep copy of o.
func (o Object) clone() Object {
	c := Object{ID: o.ID, Kind: o.Kind}
	c.Payload = append([]byte(nil), o.Payload...)
	c.Refs = append([]ObjectID(nil), o.Refs...)
	return c
}

// Stats describes the size and shape of an encoded checkpoint.
type Stats struct {
	Objects   int // number of object records
	Relations int // number of non-nil pointer fields
	Bytes     int // encoded size in bytes
}

const (
	baselineMagic = 0x43544c42 // "CTLB"
	recordsMagic  = 0x43544c52 // "CTLR"
	formatVersion = 1
)

// --- Baseline format -------------------------------------------------------

// EncodeBaseline serializes objects one-by-one and flate-compresses the
// stream, like gVisor's checkpoint path.
func EncodeBaseline(objs []Object) ([]byte, Stats, error) {
	var raw bytes.Buffer
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], baselineMagic)
	binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(objs)))
	raw.Write(hdr[:])

	stats := Stats{Objects: len(objs)}
	for i := range objs {
		if objs[i].ID != ObjectID(i) {
			return nil, Stats{}, fmt.Errorf("serial: object %d has non-dense ID %d", i, objs[i].ID)
		}
		if err := writeRecord(&raw, &objs[i], false); err != nil {
			return nil, Stats{}, err
		}
		for _, r := range objs[i].Refs {
			if r != NilRef {
				stats.Relations++
			}
		}
	}

	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, Stats{}, err
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		return nil, Stats{}, err
	}
	if err := fw.Close(); err != nil {
		return nil, Stats{}, err
	}
	stats.Bytes = out.Len()
	return out.Bytes(), stats, nil
}

// maxCheckpointBytes bounds the decompressed size of a baseline stream:
// a defense against decompression bombs in untrusted func-images. Real
// checkpoints are well below this (SPECjbb's 37,838 objects serialize to
// under 1 MiB of metadata).
const maxCheckpointBytes = 512 << 20

// minRecordBytes is the smallest possible record: 7-byte header plus the
// 2-byte ref count.
const minRecordBytes = 9

// DecodeBaseline decompresses and deserializes a baseline checkpoint,
// reconstructing every object and resolving references one-by-one.
func DecodeBaseline(data []byte) ([]Object, Stats, error) {
	fr := flate.NewReader(bytes.NewReader(data))
	raw, err := io.ReadAll(io.LimitReader(fr, maxCheckpointBytes+1))
	if err != nil {
		return nil, Stats{}, fmt.Errorf("serial: decompress: %w", err)
	}
	if len(raw) > maxCheckpointBytes {
		return nil, Stats{}, fmt.Errorf("serial: checkpoint exceeds %d bytes", maxCheckpointBytes)
	}
	if err := fr.Close(); err != nil {
		return nil, Stats{}, err
	}
	if len(raw) < 16 {
		return nil, Stats{}, errors.New("serial: baseline stream truncated")
	}
	if binary.LittleEndian.Uint32(raw[0:]) != baselineMagic {
		return nil, Stats{}, errors.New("serial: bad baseline magic")
	}
	if v := binary.LittleEndian.Uint32(raw[4:]); v != formatVersion {
		return nil, Stats{}, fmt.Errorf("serial: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(raw[8:])
	// The declared object count cannot exceed what the stream can hold;
	// validating before allocating prevents forged headers from forcing
	// huge allocations.
	if n > uint64(len(raw)-16)/minRecordBytes {
		return nil, Stats{}, fmt.Errorf("serial: declared %d objects exceeds stream capacity", n)
	}
	r := bytes.NewReader(raw[16:])

	objs := make([]Object, 0, n)
	stats := Stats{Bytes: len(data)}
	// One-by-one deserialization: each record is decoded into a fresh
	// object; references are checked against the ID space afterwards
	// (gVisor recovers "more than 37,838 objects ... one-by-one", §2.2).
	for i := uint64(0); i < n; i++ {
		obj, err := readRecord(r)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("serial: object %d: %w", i, err)
		}
		objs = append(objs, obj)
		stats.Objects++
		for _, ref := range obj.Refs {
			if ref != NilRef {
				stats.Relations++
			}
		}
	}
	for i := range objs {
		for _, ref := range objs[i].Refs {
			if ref != NilRef && uint64(ref) >= n {
				return nil, Stats{}, fmt.Errorf("serial: object %d references unknown object %d", i, ref)
			}
		}
	}
	return objs, stats, nil
}

// --- Catalyzer records format ----------------------------------------------

// Records is an encoded partially-deserialized checkpoint: a contiguous,
// uncompressed record region plus the relation table.
type Records struct {
	// Region is the record region, suitable for direct mapping.
	Region []byte
	// Relations holds (slot offset within Region → target object index)
	// pairs for every non-nil pointer field.
	Relations []Relation
	// Index holds the byte offset of each record within Region.
	Index []uint64
}

// Relation is one pointer-fixup entry.
type Relation struct {
	SlotOffset uint64 // byte offset of the 4-byte pointer slot in Region
	Target     uint32 // index of the target object
}

// Size returns the total encoded size in bytes, counting the region, the
// relation table (8 bytes per entry), and the record index.
func (r *Records) Size() int {
	return len(r.Region) + 8*len(r.Relations) + 4*len(r.Index)
}

// EncodeRecords lays objects out as contiguous records with zeroed pointer
// placeholders and builds the relation table (offline preparation, §3.2).
func EncodeRecords(objs []Object) (*Records, Stats, error) {
	rec := &Records{}
	var buf bytes.Buffer
	for i := range objs {
		if objs[i].ID != ObjectID(i) {
			return nil, Stats{}, fmt.Errorf("serial: object %d has non-dense ID %d", i, objs[i].ID)
		}
		rec.Index = append(rec.Index, uint64(buf.Len()))
		start := uint64(buf.Len())
		if err := writeRecord(&buf, &objs[i], true); err != nil {
			return nil, Stats{}, err
		}
		// Pointer slots sit at the record tail: nrefs × 4 bytes.
		slotBase := uint64(buf.Len()) - uint64(4*len(objs[i].Refs))
		for fi, ref := range objs[i].Refs {
			if ref == NilRef {
				continue
			}
			if uint64(ref) >= uint64(len(objs)) {
				return nil, Stats{}, fmt.Errorf("serial: object %d field %d references unknown object %d", i, fi, ref)
			}
			rec.Relations = append(rec.Relations, Relation{
				SlotOffset: slotBase + uint64(4*fi),
				Target:     uint32(ref),
			})
		}
		_ = start
	}
	rec.Region = buf.Bytes()
	stats := Stats{Objects: len(objs), Relations: len(rec.Relations), Bytes: rec.Size()}
	return rec, stats, nil
}

// FixupRecords replays the relation table against the mapped region,
// replacing placeholders with real references (stage-2 of separated state
// recovery). Each entry is independent; the caller charges the cost as
// parallel work. It reports the number of fixups applied.
func FixupRecords(rec *Records) (int, error) {
	for _, rel := range rec.Relations {
		if rel.SlotOffset+4 > uint64(len(rec.Region)) {
			return 0, fmt.Errorf("serial: relation slot %d out of range", rel.SlotOffset)
		}
		binary.LittleEndian.PutUint32(rec.Region[rel.SlotOffset:], rel.Target)
	}
	return len(rec.Relations), nil
}

// DecodeRecords materializes objects from a fixed-up region. Unlike
// DecodeBaseline this walks an index of already-laid-out records — there
// is no per-object allocation-and-resolve step in the simulated system
// (the region *is* the live state); materialization here exists so tests
// can verify graph isomorphism.
func DecodeRecords(rec *Records) ([]Object, error) {
	objs := make([]Object, 0, len(rec.Index))
	for i, off := range rec.Index {
		if off > uint64(len(rec.Region)) {
			return nil, fmt.Errorf("serial: record %d offset out of range", i)
		}
		r := bytes.NewReader(rec.Region[off:])
		obj, err := readRecord(r)
		if err != nil {
			return nil, fmt.Errorf("serial: record %d: %w", i, err)
		}
		objs = append(objs, obj)
	}
	return objs, nil
}

// --- record wire format ------------------------------------------------------
//
//	u32 id | u8 kind | u16 payloadLen | payload | u16 nrefs | nrefs × u32
//
// In placeholder mode pointer slots are written as zeroes with NilRef
// slots written as NilRef (so nil-ness survives without a relation entry).

func writeRecord(w *bytes.Buffer, o *Object, placeholders bool) error {
	if len(o.Payload) > 0xFFFF {
		return fmt.Errorf("payload of object %d too large: %d bytes", o.ID, len(o.Payload))
	}
	if len(o.Refs) > 0xFFFF {
		return fmt.Errorf("object %d has too many refs: %d", o.ID, len(o.Refs))
	}
	var hdr [7]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(o.ID))
	hdr[4] = o.Kind
	binary.LittleEndian.PutUint16(hdr[5:], uint16(len(o.Payload)))
	w.Write(hdr[:])
	w.Write(o.Payload)
	var nr [2]byte
	binary.LittleEndian.PutUint16(nr[:], uint16(len(o.Refs)))
	w.Write(nr[:])
	var slot [4]byte
	for _, ref := range o.Refs {
		switch {
		case ref == NilRef:
			binary.LittleEndian.PutUint32(slot[:], uint32(NilRef))
		case placeholders:
			binary.LittleEndian.PutUint32(slot[:], 0)
		default:
			binary.LittleEndian.PutUint32(slot[:], uint32(ref))
		}
		w.Write(slot[:])
	}
	return nil
}

func readRecord(r *bytes.Reader) (Object, error) {
	var hdr [7]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Object{}, fmt.Errorf("header: %w", err)
	}
	o := Object{
		ID:   ObjectID(binary.LittleEndian.Uint32(hdr[0:])),
		Kind: hdr[4],
	}
	plen := binary.LittleEndian.Uint16(hdr[5:])
	if int(plen) > r.Len() {
		return Object{}, fmt.Errorf("payload length %d exceeds remaining %d", plen, r.Len())
	}
	o.Payload = make([]byte, plen)
	if _, err := io.ReadFull(r, o.Payload); err != nil {
		return Object{}, fmt.Errorf("payload: %w", err)
	}
	var nr [2]byte
	if _, err := io.ReadFull(r, nr[:]); err != nil {
		return Object{}, fmt.Errorf("nrefs: %w", err)
	}
	nrefs := binary.LittleEndian.Uint16(nr[:])
	if int(nrefs)*4 > r.Len() {
		return Object{}, fmt.Errorf("ref count %d exceeds remaining bytes", nrefs)
	}
	o.Refs = make([]ObjectID, nrefs)
	var slot [4]byte
	for i := range o.Refs {
		if _, err := io.ReadFull(r, slot[:]); err != nil {
			return Object{}, fmt.Errorf("ref %d: %w", i, err)
		}
		o.Refs[i] = ObjectID(binary.LittleEndian.Uint32(slot[:]))
	}
	return o, nil
}

// Equal reports whether two object sets describe the same graph.
func Equal(a, b []Object) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Kind != b[i].Kind {
			return false
		}
		if !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
		if len(a[i].Refs) != len(b[i].Refs) {
			return false
		}
		for j := range a[i].Refs {
			if a[i].Refs[j] != b[i].Refs[j] {
				return false
			}
		}
	}
	return true
}
