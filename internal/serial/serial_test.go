package serial

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genGraph builds a deterministic pseudo-random object graph with n
// objects, mimicking a guest kernel's pointer structure (back-references
// only, plus occasional nils).
func genGraph(n int, seed int64) []Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]Object, n)
	for i := range objs {
		payload := make([]byte, 4+rng.Intn(24))
		rng.Read(payload)
		objs[i] = Object{
			ID:      ObjectID(i),
			Kind:    uint8(rng.Intn(12)),
			Payload: payload,
		}
		nrefs := rng.Intn(4)
		for j := 0; j < nrefs; j++ {
			if i == 0 || rng.Intn(5) == 0 {
				objs[i].Refs = append(objs[i].Refs, NilRef)
			} else {
				objs[i].Refs = append(objs[i].Refs, ObjectID(rng.Intn(i)))
			}
		}
	}
	return objs
}

func TestBaselineRoundTrip(t *testing.T) {
	objs := genGraph(500, 1)
	data, encStats, err := EncodeBaseline(objs)
	if err != nil {
		t.Fatal(err)
	}
	if encStats.Objects != 500 {
		t.Fatalf("encode stats objects = %d", encStats.Objects)
	}
	got, decStats, err := DecodeBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(objs, got) {
		t.Fatal("baseline round trip not isomorphic")
	}
	if decStats.Objects != encStats.Objects || decStats.Relations != encStats.Relations {
		t.Fatalf("stats mismatch: enc=%+v dec=%+v", encStats, decStats)
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	objs := genGraph(500, 2)
	rec, stats, err := EncodeRecords(objs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != 500 {
		t.Fatalf("stats objects = %d", stats.Objects)
	}
	n, err := FixupRecords(rec)
	if err != nil {
		t.Fatal(err)
	}
	if n != stats.Relations {
		t.Fatalf("fixups = %d, want %d", n, stats.Relations)
	}
	got, err := DecodeRecords(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(objs, got) {
		t.Fatal("records round trip not isomorphic")
	}
}

func TestRecordsWithoutFixupHasPlaceholders(t *testing.T) {
	objs := []Object{
		{ID: 0, Kind: 1, Payload: []byte("root")},
		{ID: 1, Kind: 2, Payload: []byte("leaf"), Refs: []ObjectID{0, NilRef}},
	}
	rec, _, err := EncodeRecords(objs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecords(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Refs[0] != 0 {
		// Placeholder is the zero value; here the real target happens to
		// be 0 too, so use a graph where it differs.
		t.Log("ambiguous case, checked below")
	}
	objs2 := []Object{
		{ID: 0, Kind: 1},
		{ID: 1, Kind: 1},
		{ID: 2, Kind: 2, Refs: []ObjectID{1}},
	}
	rec2, _, err := EncodeRecords(objs2)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := DecodeRecords(rec2)
	if err != nil {
		t.Fatal(err)
	}
	if pre[2].Refs[0] != 0 {
		t.Fatalf("placeholder = %d before fixup, want 0", pre[2].Refs[0])
	}
	if got[1].Refs[1] != NilRef {
		t.Fatal("nil ref did not survive placeholder encoding")
	}
	if _, err := FixupRecords(rec2); err != nil {
		t.Fatal(err)
	}
	post, err := DecodeRecords(rec2)
	if err != nil {
		t.Fatal(err)
	}
	if post[2].Refs[0] != 1 {
		t.Fatalf("ref = %d after fixup, want 1", post[2].Refs[0])
	}
}

func TestFormatsAgree(t *testing.T) {
	objs := genGraph(300, 3)
	data, _, err := EncodeBaseline(objs)
	if err != nil {
		t.Fatal(err)
	}
	viaBaseline, _, err := DecodeBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := EncodeRecords(objs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FixupRecords(rec); err != nil {
		t.Fatal(err)
	}
	viaRecords, err := DecodeRecords(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(viaBaseline, viaRecords) {
		t.Fatal("baseline and records formats disagree")
	}
}

func TestNonDenseIDsRejected(t *testing.T) {
	objs := []Object{{ID: 5}}
	if _, _, err := EncodeBaseline(objs); err == nil {
		t.Fatal("EncodeBaseline accepted non-dense IDs")
	}
	if _, _, err := EncodeRecords(objs); err == nil {
		t.Fatal("EncodeRecords accepted non-dense IDs")
	}
}

func TestDanglingRefRejected(t *testing.T) {
	objs := []Object{{ID: 0, Refs: []ObjectID{7}}}
	if _, _, err := EncodeRecords(objs); err == nil {
		t.Fatal("EncodeRecords accepted dangling ref")
	}
}

func TestDecodeBaselineCorrupt(t *testing.T) {
	objs := genGraph(50, 4)
	data, _, err := EncodeBaseline(objs)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": data[:len(data)/2],
		"garbage":   []byte("not a checkpoint image at all"),
	}
	for name, c := range cases {
		if _, _, err := DecodeBaseline(c); err == nil {
			t.Errorf("%s: DecodeBaseline succeeded on corrupt input", name)
		}
	}
}

func TestDecodeRecordsCorruptRelation(t *testing.T) {
	objs := genGraph(10, 5)
	rec, _, err := EncodeRecords(objs)
	if err != nil {
		t.Fatal(err)
	}
	rec.Relations = append(rec.Relations, Relation{SlotOffset: uint64(len(rec.Region)) + 100, Target: 0})
	if _, err := FixupRecords(rec); err == nil {
		t.Fatal("FixupRecords accepted out-of-range slot")
	}
}

func TestEncodeDoesNotMutateInput(t *testing.T) {
	objs := genGraph(20, 6)
	snapshot := make([]Object, len(objs))
	for i := range objs {
		snapshot[i] = objs[i].clone()
	}
	if _, _, err := EncodeBaseline(objs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := EncodeRecords(objs); err != nil {
		t.Fatal(err)
	}
	if !Equal(objs, snapshot) {
		t.Fatal("encoding mutated its input")
	}
}

// Property: both formats round-trip arbitrary graphs and agree with each
// other.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%200) + 1
		objs := genGraph(n, seed)
		data, _, err := EncodeBaseline(objs)
		if err != nil {
			return false
		}
		a, _, err := DecodeBaseline(data)
		if err != nil {
			return false
		}
		rec, _, err := EncodeRecords(objs)
		if err != nil {
			return false
		}
		if _, err := FixupRecords(rec); err != nil {
			return false
		}
		b, err := DecodeRecords(rec)
		if err != nil {
			return false
		}
		return Equal(objs, a) && Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the relation table has exactly one entry per non-nil ref.
func TestRelationCountProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%100) + 1
		objs := genGraph(n, seed)
		want := 0
		for _, o := range objs {
			for _, r := range o.Refs {
				if r != NilRef {
					want++
				}
			}
		}
		rec, stats, err := EncodeRecords(objs)
		if err != nil {
			return false
		}
		return stats.Relations == want && len(rec.Relations) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
