// Package simenv bundles the virtual clock and the calibrated cost model
// into the single environment value that every simulated subsystem charges
// against. One Env corresponds to one simulated machine.
package simenv

import (
	"catalyzer/internal/costmodel"
	"catalyzer/internal/simtime"
)

// Env is the simulation environment: a virtual clock plus the cost model
// of the machine the simulation runs on.
type Env struct {
	Clock *simtime.Clock
	Cost  *costmodel.Model
}

// New returns an Env with a fresh clock at virtual time zero.
func New(cost *costmodel.Model) *Env {
	return &Env{Clock: new(simtime.Clock), Cost: cost}
}

// Charge advances the clock by d on behalf of serial work.
func (e *Env) Charge(d simtime.Duration) { e.Clock.Advance(d) }

// ChargeN advances the clock by n repetitions of a per-operation cost.
func (e *Env) ChargeN(per simtime.Duration, n int) {
	if n < 0 {
		panic("simenv: negative operation count")
	}
	e.Clock.Advance(per * simtime.Duration(n))
}

// ChargeParallel charges total work spread perfectly across the machine's
// cores, as the paper's parallel restore stages do.
func (e *Env) ChargeParallel(total simtime.Duration) {
	e.Clock.AdvanceParallel(total, e.Cost.NCPU)
}

// Now returns the current virtual time.
func (e *Env) Now() simtime.Duration { return e.Clock.Now() }
