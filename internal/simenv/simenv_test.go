package simenv

import (
	"testing"

	"catalyzer/internal/costmodel"
	"catalyzer/internal/simtime"
)

func TestChargeAndChargeN(t *testing.T) {
	e := New(costmodel.Default())
	if e.Now() != 0 {
		t.Fatal("fresh env not at zero")
	}
	e.Charge(3 * simtime.Millisecond)
	e.ChargeN(2*simtime.Microsecond, 500)
	if got, want := e.Now(), 4*simtime.Millisecond; got != want {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestChargeNZeroAndNegative(t *testing.T) {
	e := New(costmodel.Default())
	e.ChargeN(simtime.Millisecond, 0)
	if e.Now() != 0 {
		t.Fatal("ChargeN(_, 0) advanced the clock")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative count did not panic")
		}
	}()
	e.ChargeN(simtime.Millisecond, -1)
}

func TestChargeParallelUsesNCPU(t *testing.T) {
	e := New(costmodel.Default()) // NCPU = 8
	e.ChargeParallel(80 * simtime.Millisecond)
	if got := e.Now(); got != 10*simtime.Millisecond {
		t.Fatalf("parallel charge = %v, want 10ms", got)
	}
	s := New(costmodel.Server()) // NCPU = 96
	s.ChargeParallel(96 * simtime.Millisecond)
	if got := s.Now(); got != simtime.Millisecond {
		t.Fatalf("server parallel charge = %v, want 1ms", got)
	}
}
