// Package simtime provides the deterministic virtual clock that underpins
// every latency measurement in the Catalyzer reproduction.
//
// The paper reports wall-clock latencies measured on specific hardware
// (an i7-7700 workstation and an Ant Financial server). Those absolute
// numbers are not reproducible off-testbed, so this reproduction runs on
// virtual time: every simulated operation (page copy, object decode,
// syscall, KVM ioctl, ...) advances a Clock by a calibrated cost from
// internal/costmodel. Repeated runs therefore produce identical reports,
// and the *shape* of every result — who wins, by what factor, where the
// crossovers fall — is an emergent property of the work performed rather
// than a hard-coded table.
package simtime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Duration is a span of virtual time. It aliases time.Duration so the
// standard formatting and arithmetic helpers apply, but values never come
// from the host clock.
type Duration = time.Duration

// Common units re-exported for readability at call sites.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at virtual time zero, ready to use.
//
// Reads (Now) are atomic and safe from any goroutine — circuit breakers,
// health probes and metrics read virtual time without holding the machine
// lock. Writes (Advance) must still be externally serialized: the work
// that charges virtual time is machine work, and the platform serializes
// it under its machine lock. Parallelism inside the simulated system is
// modelled by dividing cost across virtual CPUs (AdvanceParallel), not by
// concurrent charging.
type Clock struct {
	now atomic.Int64
}

// Now returns the current virtual time as an offset from the simulation
// epoch.
func (c *Clock) Now() Duration { return Duration(c.now.Load()) }

// Advance moves the clock forward by d. Negative durations are a
// programming error and panic: virtual time is monotonic.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %v", d))
	}
	c.now.Add(int64(d))
}

// AdvanceParallel charges total work that is perfectly divisible across
// ncpu virtual CPUs, advancing the clock by total/ncpu. It models the
// paper's parallel restore stages (e.g. separated state recovery performs
// pointer fixups "in parallel" across cores). ncpu must be positive.
func (c *Clock) AdvanceParallel(total Duration, ncpu int) {
	if ncpu <= 0 {
		panic(fmt.Sprintf("simtime: AdvanceParallel with ncpu=%d", ncpu))
	}
	c.Advance(total / Duration(ncpu))
}

// Span measures the virtual duration of fn: it records Now, runs fn, and
// returns how far the clock advanced.
func (c *Clock) Span(fn func()) Duration {
	start := c.Now()
	fn()
	return c.Now() - start
}

// A Phase is a named, measured portion of a larger operation, mirroring the
// per-step breakdowns the paper reports in Figure 2.
type Phase struct {
	Name     string
	Duration Duration
}

// Timeline accumulates named phases against a Clock. It is the building
// block for boot reports: each boot path wraps its steps in Measure calls
// and the resulting phase list reproduces the paper's breakdown figures.
type Timeline struct {
	clock  *Clock
	phases []Phase
}

// NewTimeline returns a Timeline recording against clock.
func NewTimeline(clock *Clock) *Timeline {
	return &Timeline{clock: clock}
}

// Clock returns the underlying clock.
func (t *Timeline) Clock() *Clock { return t.clock }

// Measure runs fn and records the virtual time it consumed under name.
// Repeated names accumulate into separate entries, preserving order.
func (t *Timeline) Measure(name string, fn func()) Duration {
	d := t.clock.Span(fn)
	t.phases = append(t.phases, Phase{Name: name, Duration: d})
	return d
}

// Record appends an already-measured phase. It is used when a cost is
// computed out of line (e.g. charged by a subsystem that reports the span).
func (t *Timeline) Record(name string, d Duration) {
	t.clock.Advance(d)
	t.phases = append(t.phases, Phase{Name: name, Duration: d})
}

// Phases returns the recorded phases in order. The returned slice is a
// copy; callers may retain it.
func (t *Timeline) Phases() []Phase {
	out := make([]Phase, len(t.phases))
	copy(out, t.phases)
	return out
}

// Total returns the sum of all recorded phase durations.
func (t *Timeline) Total() Duration {
	var sum Duration
	for _, p := range t.phases {
		sum += p.Duration
	}
	return sum
}

// PhaseDuration returns the summed duration of all phases with the given
// name, and whether any phase with that name was recorded.
func (t *Timeline) PhaseDuration(name string) (Duration, bool) {
	var sum Duration
	found := false
	for _, p := range t.phases {
		if p.Name == name {
			sum += p.Duration
			found = true
		}
	}
	return sum, found
}
