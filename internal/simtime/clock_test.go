package simtime

import (
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestAdvance(t *testing.T) {
	var c Clock
	c.Advance(5 * Millisecond)
	c.Advance(300 * Microsecond)
	if got, want := c.Now(), 5*Millisecond+300*Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestAdvanceParallel(t *testing.T) {
	var c Clock
	c.AdvanceParallel(80*Millisecond, 8)
	if got, want := c.Now(), 10*Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceParallelBadCPU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceParallel(_, 0) did not panic")
		}
	}()
	var c Clock
	c.AdvanceParallel(time1ms(), 0)
}

func time1ms() Duration { return Millisecond }

func TestSpan(t *testing.T) {
	var c Clock
	c.Advance(Millisecond)
	d := c.Span(func() {
		c.Advance(2 * Millisecond)
		c.Advance(3 * Millisecond)
	})
	if d != 5*Millisecond {
		t.Fatalf("Span = %v, want 5ms", d)
	}
	if c.Now() != 6*Millisecond {
		t.Fatalf("Now() = %v, want 6ms", c.Now())
	}
}

func TestTimelineMeasureAndTotal(t *testing.T) {
	var c Clock
	tl := NewTimeline(&c)
	tl.Measure("parse", func() { c.Advance(1369 * Microsecond) })
	tl.Measure("boot", func() { c.Advance(319 * Microsecond) })
	tl.Record("rpc", 200*Microsecond)

	phases := tl.Phases()
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(phases))
	}
	if phases[0].Name != "parse" || phases[0].Duration != 1369*Microsecond {
		t.Fatalf("phase 0 = %+v", phases[0])
	}
	if got, want := tl.Total(), 1888*Microsecond; got != want {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	if got := c.Now(); got != tl.Total() {
		t.Fatalf("clock %v != timeline total %v", got, tl.Total())
	}
}

func TestTimelinePhaseDuration(t *testing.T) {
	var c Clock
	tl := NewTimeline(&c)
	tl.Record("io", Millisecond)
	tl.Record("mem", 2*Millisecond)
	tl.Record("io", 3*Millisecond)

	d, ok := tl.PhaseDuration("io")
	if !ok || d != 4*Millisecond {
		t.Fatalf("PhaseDuration(io) = %v,%v; want 4ms,true", d, ok)
	}
	if _, ok := tl.PhaseDuration("missing"); ok {
		t.Fatal("PhaseDuration(missing) reported found")
	}
}

func TestTimelinePhasesIsCopy(t *testing.T) {
	var c Clock
	tl := NewTimeline(&c)
	tl.Record("a", Millisecond)
	p := tl.Phases()
	p[0].Name = "mutated"
	if tl.Phases()[0].Name != "a" {
		t.Fatal("Phases() does not return a copy")
	}
}

// Property: for any sequence of non-negative advances, Now equals their sum
// and never decreases.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		var c Clock
		var sum Duration
		prev := c.Now()
		for _, s := range steps {
			d := Duration(s) * Microsecond
			c.Advance(d)
			sum += d
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return c.Now() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a timeline's Total always equals the clock delta it produced.
func TestTimelineTotalMatchesClockProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		var c Clock
		tl := NewTimeline(&c)
		start := c.Now()
		for i, s := range steps {
			d := Duration(s) * Nanosecond
			if i%2 == 0 {
				tl.Record("even", d)
			} else {
				tl.Measure("odd", func() { c.Advance(d) })
			}
		}
		return tl.Total() == c.Now()-start
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
