// Package supervise is the platform's runtime supervision layer: it
// watches what happens to sandboxes *after* they boot. The boot chain
// (internal/platform's recovery machinery) handles failures on the way
// up; this package handles instances that come up fine and go bad later
// — wedged keep-warm instances, stale pooled Zygotes, poisoned
// templates, hung invocations, and functions stuck in crash loops.
//
// Everything is virtual-time driven. The supervisor owns no timer and
// spawns no ticker: probes are declared with a cadence and executed by
// Poll, which the platform calls at natural quiescent points (the end of
// each recovered invocation). A probe whose interval has elapsed on the
// virtual clock runs; the rest wait. This keeps the whole layer
// deterministic under the repo's wallclock invariant (no host clock
// reads outside internal/simtime) while still modelling "background"
// health loops: probe work is charged to the machine clock outside any
// invocation's measured latency, which is exactly what off-critical-path
// means in a virtual-time system.
//
// The supervisor also tracks per-function crash loops in a sliding
// virtual-time window and parks repeat offenders with exponential
// backoff (typed ErrCrashLooping), and carries the tracked-goroutine
// plumbing (Go/Close) that lets the platform run template regeneration
// and pool refills asynchronously yet drain them deterministically at
// shutdown: after Close returns, no probe fires and no tracked task is
// still running.
package supervise

import (
	"errors"
	"fmt"
	"sync"

	"catalyzer/internal/simtime"
)

// ErrCrashLooping is returned (wrapped, with the function name and the
// remaining park time) when a function has failed often enough inside
// the sliding window that the supervisor refuses to boot it until its
// backoff expires.
var ErrCrashLooping = errors.New("supervise: function is crash-looping")

// Config tunes the supervision layer. Zero values select the defaults;
// negative values are rejected by Validate.
type Config struct {
	// ProbeInterval is the virtual-time cadence of each liveness probe
	// group (keep-warm, templates, zygotes).
	ProbeInterval simtime.Duration
	// WatchdogMultiple is the hung-invocation kill threshold, as a
	// multiple of the invocation's expected execution cost: a hung
	// execution is killed after WatchdogMultiple × expected-exec of
	// virtual time.
	WatchdogMultiple int
	// PoisonThreshold is the number of *distinct* failed sfork children
	// that convicts their template as poisoned (see sandbox.Lineage).
	PoisonThreshold int
	// CrashLoopWindow is the sliding virtual-time window over which
	// per-function failures are counted.
	CrashLoopWindow simtime.Duration
	// CrashLoopThreshold is the failure count within the window that
	// parks the function.
	CrashLoopThreshold int
	// ParkBase is the first park duration; each consecutive park doubles
	// it, capped at ParkMax.
	ParkBase simtime.Duration
	// ParkMax caps the exponential park backoff.
	ParkMax simtime.Duration
}

// DefaultConfig returns the supervision defaults: 100ms probe cadence,
// watchdog kill at 8× the expected execution cost, poisoning verdict at
// 3 distinct failed children, crash-loop parking at 5 failures inside a
// 1s window with 100ms..10s exponential backoff.
func DefaultConfig() Config {
	return Config{
		ProbeInterval:      100 * simtime.Millisecond,
		WatchdogMultiple:   8,
		PoisonThreshold:    3,
		CrashLoopWindow:    simtime.Second,
		CrashLoopThreshold: 5,
		ParkBase:           100 * simtime.Millisecond,
		ParkMax:            10 * simtime.Second,
	}
}

// Validate rejects nonsensical tunings (negative durations or counts).
func (c Config) Validate() error {
	if c.ProbeInterval < 0 || c.CrashLoopWindow < 0 || c.ParkBase < 0 || c.ParkMax < 0 {
		return fmt.Errorf("supervise: negative duration in config: %+v", c)
	}
	if c.WatchdogMultiple < 0 || c.PoisonThreshold < 0 || c.CrashLoopThreshold < 0 {
		return fmt.Errorf("supervise: negative threshold in config: %+v", c)
	}
	return nil
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ProbeInterval == 0 {
		c.ProbeInterval = d.ProbeInterval
	}
	if c.WatchdogMultiple == 0 {
		c.WatchdogMultiple = d.WatchdogMultiple
	}
	if c.PoisonThreshold == 0 {
		c.PoisonThreshold = d.PoisonThreshold
	}
	if c.CrashLoopWindow == 0 {
		c.CrashLoopWindow = d.CrashLoopWindow
	}
	if c.CrashLoopThreshold == 0 {
		c.CrashLoopThreshold = d.CrashLoopThreshold
	}
	if c.ParkBase == 0 {
		c.ParkBase = d.ParkBase
	}
	if c.ParkMax == 0 {
		c.ParkMax = d.ParkMax
	}
	return c
}

// Stats is the supervisor's accounting. Everything here must reach the
// daemon's /metrics (enforced by the metricsreg analyzer on the
// projection in cmd/catalyzerd).
type Stats struct {
	// ProbesRun counts probe-group executions; TargetsProbed counts the
	// individual instances those probes inspected.
	ProbesRun     int
	TargetsProbed int
	// WedgedEvicted counts instances a probe found wedged and evicted
	// (keep-warm instances, pooled Zygotes, template sandboxes).
	WedgedEvicted int
	// CrashLoopsParked counts park events; CrashLoopRejects counts
	// boots refused with ErrCrashLooping while parked.
	CrashLoopsParked int
	CrashLoopRejects int
	// ParkedFunctions is the current number of parked functions (gauge).
	ParkedFunctions int
}

// probeEntry is one registered probe group.
type probeEntry struct {
	name     string
	fn       func() (checked, evicted int)
	interval simtime.Duration
	nextDue  simtime.Duration
	running  bool
}

// fnHealth is one function's crash-loop state.
type fnHealth struct {
	fails       []simtime.Duration // failure timestamps inside the window
	parkedUntil simtime.Duration
	parks       int // consecutive park count, drives the backoff exponent
}

// Supervisor runs liveness probes on a virtual-time cadence, tracks
// per-function crash loops, and owns the tracked background goroutines
// the platform's self-healing paths (template regeneration, pool
// refills) run on. Safe for concurrent use.
type Supervisor struct {
	now func() simtime.Duration
	cfg Config

	mu     sync.Mutex
	probes []*probeEntry
	health map[string]*fnHealth
	stats  Stats
	closed bool

	wg sync.WaitGroup // in-flight probes + tracked background tasks
}

// New builds a supervisor reading virtual time through now. Zero config
// fields take defaults; invalid configs are the caller's to Validate.
func New(now func() simtime.Duration, cfg Config) *Supervisor {
	return &Supervisor{
		now:    now,
		cfg:    cfg.withDefaults(),
		health: make(map[string]*fnHealth),
	}
}

// Config returns the effective (defaulted) tuning.
func (s *Supervisor) Config() Config { return s.cfg }

// Register adds a named probe group on the default ProbeInterval
// cadence. fn inspects its targets and returns how many it checked and
// how many wedged ones it evicted; the supervisor does the cadence
// bookkeeping and stats. The first run is due one interval after
// registration.
func (s *Supervisor) Register(name string, fn func() (checked, evicted int)) {
	s.RegisterEvery(name, 0, fn)
}

// RegisterEvery adds a named probe group with its own virtual-time
// cadence (≤ 0 selects the supervisor's ProbeInterval), so slow
// background sweeps and fast recovery probes can coexist on one
// supervisor.
func (s *Supervisor) RegisterEvery(name string, every simtime.Duration, fn func() (checked, evicted int)) {
	if every <= 0 {
		every = s.cfg.ProbeInterval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes = append(s.probes, &probeEntry{
		name:     name,
		fn:       fn,
		interval: every,
		nextDue:  s.now() + every,
	})
}

// Poll runs every probe group whose interval has elapsed on the virtual
// clock. Probes run outside the supervisor's mutex (they take the
// platform's machine lock); a group already running in another Poll is
// skipped, and nothing runs after Close. The platform calls Poll at the
// end of each recovered invocation, so probe work is charged off every
// request's measured latency.
func (s *Supervisor) Poll() {
	now := s.now()
	var due []*probeEntry
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	for _, p := range s.probes {
		if !p.running && now >= p.nextDue {
			p.running = true
			due = append(due, p)
		}
	}
	s.wg.Add(len(due))
	s.mu.Unlock()

	for _, p := range due {
		checked, evicted := p.fn()
		s.mu.Lock()
		p.running = false
		p.nextDue = s.now() + p.interval
		s.stats.ProbesRun++
		s.stats.TargetsProbed += checked
		s.stats.WedgedEvicted += evicted
		s.mu.Unlock()
		s.wg.Done()
	}
}

// Go runs fn as a tracked background task: Close waits for it. It
// reports false (without running fn) once the supervisor is closed, so
// self-healing work scheduled during shutdown is dropped, not leaked.
func (s *Supervisor) Go(fn func()) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		fn()
	}()
	return true
}

// Wait blocks until currently in-flight probes and tracked background
// tasks finish (tests; Close implies it).
func (s *Supervisor) Wait() { s.wg.Wait() }

// Close stops the supervisor: no probe fires after Close returns, no
// new tracked task starts, and every in-flight probe or task has
// finished. Idempotent.
func (s *Supervisor) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// Closed reports whether Close has been called.
func (s *Supervisor) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Stats returns a snapshot of the supervisor's accounting. The
// ParkedFunctions gauge is computed against the current virtual time.
func (s *Supervisor) Stats() Stats {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	for _, h := range s.health {
		if now < h.parkedUntil {
			out.ParkedFunctions++
		}
	}
	return out
}

// Parked lists the currently parked functions with their remaining park
// time, for /health.
func (s *Supervisor) Parked() map[string]simtime.Duration {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]simtime.Duration)
	for name, h := range s.health {
		if now < h.parkedUntil {
			out[name] = h.parkedUntil - now
		}
	}
	return out
}

// Allow gates a function's boot on its crash-loop state: a parked
// function is refused with a wrapped ErrCrashLooping carrying the
// remaining park time.
func (s *Supervisor) Allow(fn string) error {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.health[fn]
	if h == nil || now >= h.parkedUntil {
		return nil
	}
	s.stats.CrashLoopRejects++
	return fmt.Errorf("%w: %s parked for another %v", ErrCrashLooping, fn, h.parkedUntil-now)
}

// NoteFailure records one failed invocation of fn at the current
// virtual time. Crossing CrashLoopThreshold failures inside
// CrashLoopWindow parks the function for ParkBase doubled per
// consecutive park (capped at ParkMax). It reports whether this call
// parked the function.
func (s *Supervisor) NoteFailure(fn string) bool {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.health[fn]
	if h == nil {
		h = &fnHealth{}
		s.health[fn] = h
	}
	if now < h.parkedUntil {
		// Already parked: failures of in-flight stragglers don't extend
		// or re-trigger the park.
		return false
	}
	h.fails = append(h.fails, now)
	// Slide the window.
	cut := 0
	for cut < len(h.fails) && h.fails[cut]+s.cfg.CrashLoopWindow < now {
		cut++
	}
	h.fails = h.fails[cut:]
	if len(h.fails) < s.cfg.CrashLoopThreshold {
		return false
	}
	park := s.cfg.ParkBase << h.parks
	if park > s.cfg.ParkMax || park <= 0 {
		park = s.cfg.ParkMax
	}
	h.parkedUntil = now + park
	h.parks++
	h.fails = nil
	s.stats.CrashLoopsParked++
	return true
}

// NoteSuccess records a successful invocation of fn: the failure window
// clears and the park backoff resets.
func (s *Supervisor) NoteSuccess(fn string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h := s.health[fn]; h != nil {
		h.fails = nil
		h.parks = 0
	}
}
