package supervise

import (
	"errors"
	"sync"
	"testing"

	"catalyzer/internal/simtime"
)

// vclock is a test-owned virtual clock.
type vclock struct {
	mu  sync.Mutex
	now simtime.Duration
}

func (c *vclock) Now() simtime.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *vclock) Advance(d simtime.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newSup(cfg Config) (*Supervisor, *vclock) {
	c := &vclock{}
	return New(c.Now, cfg), c
}

func TestDefaultsFillZeroFields(t *testing.T) {
	s, _ := newSup(Config{})
	if s.Config() != DefaultConfig() {
		t.Fatalf("zero config = %+v, want defaults %+v", s.Config(), DefaultConfig())
	}
	// Partial configs keep what was set.
	s, _ = newSup(Config{PoisonThreshold: 7})
	if got := s.Config().PoisonThreshold; got != 7 {
		t.Fatalf("PoisonThreshold = %d, want 7", got)
	}
	if got := s.Config().WatchdogMultiple; got != DefaultConfig().WatchdogMultiple {
		t.Fatalf("WatchdogMultiple = %d, want default", got)
	}
}

func TestValidateRejectsNegatives(t *testing.T) {
	if err := (Config{ProbeInterval: -1}).Validate(); err == nil {
		t.Fatal("negative ProbeInterval accepted")
	}
	if err := (Config{PoisonThreshold: -1}).Validate(); err == nil {
		t.Fatal("negative PoisonThreshold accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

func TestProbeCadenceIsVirtualTime(t *testing.T) {
	s, clk := newSup(Config{ProbeInterval: 10 * simtime.Millisecond})
	runs := 0
	s.Register("kw", func() (int, int) { runs++; return 2, 1 })

	// Not due yet: interval has not elapsed.
	s.Poll()
	if runs != 0 {
		t.Fatalf("probe ran before its interval: %d", runs)
	}
	clk.Advance(10 * simtime.Millisecond)
	s.Poll()
	if runs != 1 {
		t.Fatalf("runs = %d after one interval, want 1", runs)
	}
	// Polling again without advancing does nothing.
	s.Poll()
	s.Poll()
	if runs != 1 {
		t.Fatalf("probe re-ran without clock advance: %d", runs)
	}
	clk.Advance(10 * simtime.Millisecond)
	s.Poll()
	if runs != 2 {
		t.Fatalf("runs = %d after second interval, want 2", runs)
	}
	st := s.Stats()
	if st.ProbesRun != 2 || st.TargetsProbed != 4 || st.WedgedEvicted != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoProbeAfterClose(t *testing.T) {
	s, clk := newSup(Config{ProbeInterval: simtime.Millisecond})
	runs := 0
	s.Register("kw", func() (int, int) { runs++; return 1, 0 })
	clk.Advance(simtime.Millisecond)
	s.Poll()
	if runs != 1 {
		t.Fatalf("runs = %d, want 1", runs)
	}
	s.Close()
	clk.Advance(simtime.Second)
	s.Poll()
	if runs != 1 {
		t.Fatalf("probe fired after Close: runs = %d", runs)
	}
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	s.Close() // idempotent
}

func TestGoTracksAndRefusesAfterClose(t *testing.T) {
	s, _ := newSup(Config{})
	done := make(chan struct{})
	ran := false
	if !s.Go(func() { ran = true; close(done) }) {
		t.Fatal("Go refused before Close")
	}
	<-done
	s.Close() // waits for the task
	if !ran {
		t.Fatal("tracked task did not run")
	}
	if s.Go(func() { t.Error("task ran after Close") }) {
		t.Fatal("Go accepted after Close")
	}
}

func TestCrashLoopParksAndBacksOffExponentially(t *testing.T) {
	s, clk := newSup(Config{
		CrashLoopWindow:    100 * simtime.Millisecond,
		CrashLoopThreshold: 3,
		ParkBase:           10 * simtime.Millisecond,
		ParkMax:            40 * simtime.Millisecond,
	})
	if err := s.Allow("fn"); err != nil {
		t.Fatalf("fresh function refused: %v", err)
	}
	s.NoteFailure("fn")
	s.NoteFailure("fn")
	if err := s.Allow("fn"); err != nil {
		t.Fatalf("below threshold refused: %v", err)
	}
	if !s.NoteFailure("fn") {
		t.Fatal("third failure in window did not park")
	}
	err := s.Allow("fn")
	if !errors.Is(err, ErrCrashLooping) {
		t.Fatalf("parked function allowed: %v", err)
	}
	if st := s.Stats(); st.CrashLoopsParked != 1 || st.CrashLoopRejects != 1 || st.ParkedFunctions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if d, ok := s.Parked()["fn"]; !ok || d <= 0 {
		t.Fatalf("Parked() = %v", s.Parked())
	}

	// Park expires in virtual time (first park = ParkBase).
	clk.Advance(10 * simtime.Millisecond)
	if err := s.Allow("fn"); err != nil {
		t.Fatalf("expired park still refuses: %v", err)
	}

	// A second crash loop parks for double the time.
	for i := 0; i < 3; i++ {
		s.NoteFailure("fn")
	}
	clk.Advance(10 * simtime.Millisecond)
	if err := s.Allow("fn"); !errors.Is(err, ErrCrashLooping) {
		t.Fatalf("second park should last 20ms, got allow at 10ms: %v", err)
	}
	clk.Advance(10 * simtime.Millisecond)
	if err := s.Allow("fn"); err != nil {
		t.Fatalf("second park should expire at 20ms: %v", err)
	}

	// Third and fourth parks hit the 40ms cap.
	for i := 0; i < 3; i++ {
		s.NoteFailure("fn")
	}
	clk.Advance(40 * simtime.Millisecond)
	if err := s.Allow("fn"); err != nil {
		t.Fatalf("third park exceeds ParkMax: %v", err)
	}
	for i := 0; i < 3; i++ {
		s.NoteFailure("fn")
	}
	clk.Advance(39 * simtime.Millisecond)
	if err := s.Allow("fn"); !errors.Is(err, ErrCrashLooping) {
		t.Fatal("fourth park shorter than ParkMax")
	}
	clk.Advance(simtime.Millisecond)
	if err := s.Allow("fn"); err != nil {
		t.Fatalf("fourth park should cap at ParkMax: %v", err)
	}
}

func TestSlidingWindowForgetsOldFailures(t *testing.T) {
	s, clk := newSup(Config{
		CrashLoopWindow:    10 * simtime.Millisecond,
		CrashLoopThreshold: 3,
	})
	s.NoteFailure("fn")
	s.NoteFailure("fn")
	clk.Advance(20 * simtime.Millisecond) // both slide out
	if s.NoteFailure("fn") {
		t.Fatal("stale failures counted toward the park verdict")
	}
	if err := s.Allow("fn"); err != nil {
		t.Fatalf("function parked on stale failures: %v", err)
	}
}

func TestSuccessResetsWindowAndBackoff(t *testing.T) {
	s, clk := newSup(Config{
		CrashLoopWindow:    100 * simtime.Millisecond,
		CrashLoopThreshold: 3,
		ParkBase:           10 * simtime.Millisecond,
		ParkMax:            80 * simtime.Millisecond,
	})
	// Park once so the backoff exponent is nonzero.
	for i := 0; i < 3; i++ {
		s.NoteFailure("fn")
	}
	clk.Advance(10 * simtime.Millisecond)
	s.NoteSuccess("fn")
	// After a success, the next park starts from ParkBase again.
	for i := 0; i < 3; i++ {
		s.NoteFailure("fn")
	}
	clk.Advance(10 * simtime.Millisecond)
	if err := s.Allow("fn"); err != nil {
		t.Fatalf("backoff did not reset after success: %v", err)
	}
	// And two failures followed by success never park.
	s.NoteFailure("fn")
	s.NoteFailure("fn")
	s.NoteSuccess("fn")
	if s.NoteFailure("fn") {
		t.Fatal("parked despite success clearing the window")
	}
}

func TestFailuresWhileParkedDoNotExtendPark(t *testing.T) {
	s, clk := newSup(Config{
		CrashLoopWindow:    100 * simtime.Millisecond,
		CrashLoopThreshold: 2,
		ParkBase:           10 * simtime.Millisecond,
		ParkMax:            10 * simtime.Millisecond,
	})
	s.NoteFailure("fn")
	if !s.NoteFailure("fn") {
		t.Fatal("second failure did not park")
	}
	// In-flight stragglers failing mid-park must not re-park.
	clk.Advance(5 * simtime.Millisecond)
	if s.NoteFailure("fn") {
		t.Fatal("straggler failure re-parked mid-park")
	}
	clk.Advance(5 * simtime.Millisecond)
	if err := s.Allow("fn"); err != nil {
		t.Fatalf("park extended by straggler: %v", err)
	}
}

func TestConcurrentPollsRunEachProbeOnce(t *testing.T) {
	s, clk := newSup(Config{ProbeInterval: simtime.Millisecond})
	var mu sync.Mutex
	runs := 0
	block := make(chan struct{})
	s.Register("slow", func() (int, int) {
		mu.Lock()
		runs++
		mu.Unlock()
		<-block
		return 1, 0
	})
	clk.Advance(simtime.Millisecond)
	go s.Poll()
	// Wait for the first Poll to be inside the probe.
	for {
		mu.Lock()
		r := runs
		mu.Unlock()
		if r == 1 {
			break
		}
	}
	// A second Poll while the probe is running must skip it.
	s.Poll()
	mu.Lock()
	r := runs
	mu.Unlock()
	if r != 1 {
		t.Fatalf("probe ran concurrently: %d", r)
	}
	close(block)
	s.Close() // waits out the in-flight probe
}

func TestRegisterEveryRunsOnItsOwnCadence(t *testing.T) {
	s, clk := newSup(Config{ProbeInterval: 10 * simtime.Millisecond})
	slow, fast := 0, 0
	s.Register("slow", func() (int, int) { slow++; return 1, 0 })
	s.RegisterEvery("fast", 2*simtime.Millisecond, func() (int, int) { fast++; return 1, 0 })

	for i := 0; i < 10; i++ {
		clk.Advance(2 * simtime.Millisecond)
		s.Poll()
	}
	// 20ms elapsed: the fast probe fired every 2ms, the slow one every
	// 10ms.
	if fast != 10 {
		t.Fatalf("fast runs = %d, want 10", fast)
	}
	if slow != 2 {
		t.Fatalf("slow runs = %d, want 2", slow)
	}

	// A non-positive cadence takes the supervisor default.
	def := 0
	s.RegisterEvery("def", 0, func() (int, int) { def++; return 0, 0 })
	clk.Advance(10 * simtime.Millisecond)
	s.Poll()
	if def != 1 {
		t.Fatalf("default-cadence runs = %d, want 1", def)
	}
}
