package vfs

import (
	"fmt"

	"catalyzer/internal/simenv"
)

// ConnKind classifies I/O connections.
type ConnKind uint8

const (
	ConnFile ConnKind = iota
	ConnSocket
)

func (k ConnKind) String() string {
	if k == ConnSocket {
		return "socket"
	}
	return "file"
}

// ConnState tracks a connection across checkpoint/restore.
type ConnState uint8

const (
	// StateOpen: the connection is live.
	StateOpen ConnState = iota
	// StatePending: the descriptor was handed to the application but is
	// "tagged as not re-opened yet in the guest kernel" (§3.3); first
	// use performs the re-do operation.
	StatePending
	// StateClosed: closed by the application.
	StateClosed
)

// Conn is one I/O connection owned by a sandbox's guest kernel.
type Conn struct {
	ID    int
	Kind  ConnKind
	Path  string
	State ConnState
}

// ConnTable is a guest kernel's I/O connection table plus the restore-time
// reconnection machinery.
type ConnTable struct {
	env    *simenv.Env
	nextID int
	conns  map[int]*Conn

	// Reconnects counts re-do operations actually performed, split by
	// where they were paid.
	EagerReconnects  int
	CachedReconnects int
	LazyReconnects   int
}

// NewConnTable returns an empty table.
func NewConnTable(env *simenv.Env) *ConnTable {
	return &ConnTable{env: env, conns: make(map[int]*Conn)}
}

// Open registers a live connection (the open itself is charged by the
// caller as part of application syscall accounting).
func (ct *ConnTable) Open(kind ConnKind, path string) *Conn {
	ct.nextID++
	c := &Conn{ID: ct.nextID, Kind: kind, Path: Clean(path), State: StateOpen}
	ct.conns[c.ID] = c
	return c
}

// Close closes a connection.
func (ct *ConnTable) Close(id int) error {
	c, ok := ct.conns[id]
	if !ok {
		return fmt.Errorf("vfs: close of unknown conn %d", id)
	}
	c.State = StateClosed
	return nil
}

// Len returns the number of non-closed connections.
func (ct *ConnTable) Len() int {
	n := 0
	for _, c := range ct.conns {
		if c.State != StateClosed {
			n++
		}
	}
	return n
}

// Conns returns all non-closed connections in ID (open) order.
func (ct *ConnTable) Conns() []*Conn {
	out := make([]*Conn, 0, len(ct.conns))
	for id := 1; id <= ct.nextID; id++ {
		if c, ok := ct.conns[id]; ok && c.State != StateClosed {
			out = append(out, c)
		}
	}
	return out
}

// ConnRecord is the checkpointed form of a connection.
type ConnRecord struct {
	Kind ConnKind
	Path string
}

// Capture snapshots the non-closed connections for a func-image.
func (ct *ConnTable) Capture() []ConnRecord {
	var out []ConnRecord
	for id := 1; id <= ct.nextID; id++ {
		c, ok := ct.conns[id]
		if !ok || c.State == ConnState(StateClosed) {
			continue
		}
		out = append(out, ConnRecord{Kind: c.Kind, Path: c.Path})
	}
	return out
}

// RestoreEager rebuilds the table from records by performing every re-do
// operation on the critical path, the way gVisor-restore re-opens every
// "suppose opened" file (§2.2). Each re-do charges ConnReconnect.
func RestoreEager(env *simenv.Env, records []ConnRecord) *ConnTable {
	ct := NewConnTable(env)
	for _, r := range records {
		env.Charge(env.Cost.ConnReconnect)
		c := ct.Open(r.Kind, r.Path)
		c.State = StateOpen
		ct.EagerReconnects++
	}
	return ct
}

// RestoreLazy rebuilds the table with every connection pending: the
// descriptor exists, the re-do happens on first use (§3.3).
func RestoreLazy(env *simenv.Env, records []ConnRecord) *ConnTable {
	ct := NewConnTable(env)
	for _, r := range records {
		env.Charge(env.Cost.ConnReconnectLazy)
		c := ct.Open(r.Kind, r.Path)
		c.State = StatePending
	}
	return ct
}

// RestoreWithCache rebuilds the table using an I/O cache: connections the
// cache marks as deterministically used right after boot are re-connected
// on the critical path (with the lazy-dup optimization, §6.7), the rest
// stay pending (§3.3).
func RestoreWithCache(env *simenv.Env, records []ConnRecord, cache *IOCache) *ConnTable {
	ct := NewConnTable(env)
	for _, r := range records {
		c := ct.Open(r.Kind, r.Path)
		if cache != nil && cache.Contains(r.Path) {
			env.Charge(env.Cost.ConnReconnectCached)
			c.State = StateOpen
			ct.CachedReconnects++
		} else {
			env.Charge(env.Cost.ConnReconnectLazy)
			c.State = StatePending
		}
	}
	return ct
}

// Use accesses a connection, lazily performing the re-do operation if it
// is still pending. It reports whether a reconnect was paid.
func (ct *ConnTable) Use(id int) (bool, error) {
	c, ok := ct.conns[id]
	if !ok {
		return false, fmt.Errorf("vfs: use of unknown conn %d", id)
	}
	switch c.State {
	case StateClosed:
		return false, fmt.Errorf("vfs: use of closed conn %d (%s)", id, c.Path)
	case StatePending:
		ct.env.Charge(ct.env.Cost.ConnReconnect)
		c.State = StateOpen
		ct.LazyReconnects++
		return true, nil
	default:
		return false, nil
	}
}

// Clone returns a copy of the table for an sforked child: inherited
// descriptors keep their IDs and states (read-only grants from the FS
// server remain valid across sfork, §4.2). Reconnect counters start
// fresh.
func (ct *ConnTable) Clone() *ConnTable {
	c := NewConnTable(ct.env)
	c.nextID = ct.nextID
	for id, conn := range ct.conns {
		cc := *conn
		c.conns[id] = &cc
	}
	return c
}

// PendingCount returns how many connections still await their re-do.
func (ct *ConnTable) PendingCount() int {
	n := 0
	for _, c := range ct.conns {
		if c.State == StatePending {
			n++
		}
	}
	return n
}

// IOCache records which connections a function uses deterministically
// right after booting (§3.3). It is produced during a cold boot and
// consulted by warm boots.
type IOCache struct {
	order []string
	ops   map[string]uint8 // path → op bits (bit0 read, bit1 write)
}

// NewIOCache returns an empty cache.
func NewIOCache() *IOCache {
	return &IOCache{ops: make(map[string]uint8)}
}

// RecordUse notes that path was used (op: 'r' or 'w') during the
// post-boot window of a cold boot.
func (c *IOCache) RecordUse(path string, write bool) {
	path = Clean(path)
	bit := uint8(1)
	if write {
		bit = 2
	}
	if _, ok := c.ops[path]; !ok {
		c.order = append(c.order, path)
	}
	c.ops[path] |= bit
}

// Contains reports whether path is cached.
func (c *IOCache) Contains(path string) bool {
	_, ok := c.ops[Clean(path)]
	return ok
}

// Len returns the number of cached paths.
func (c *IOCache) Len() int { return len(c.order) }

// Paths returns cached paths in first-use order.
func (c *IOCache) Paths() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Bytes returns the serialized size of the cache: per entry a 2-byte
// length prefix, the path, and an op byte. This is the "I/O Cache" column
// of Table 3.
func (c *IOCache) Bytes() int {
	n := 0
	for _, p := range c.order {
		n += 2 + len(p) + 1
	}
	return n
}
