package vfs

import (
	"fmt"
)

// GrantMode distinguishes the FS server's descriptor grants.
type GrantMode uint8

const (
	// GrantReadOnly descriptors remain valid in sforked children: they
	// cannot violate isolation, so they are inherited at zero cost (§4.2).
	GrantReadOnly GrantMode = iota
	// GrantReadWrite descriptors are only issued for designated log
	// files ("persistent storage is still required ... e.g. writing
	// logs", §4.2) and must be re-granted per sandbox.
	GrantReadWrite
)

// Grant is a descriptor issued by the FS server.
type Grant struct {
	ID   int
	Path string
	Mode GrantMode
}

// FSServer is the per-function file server that owns the real rootFS. A
// sandbox never touches persistent storage directly; it works through
// grants (§4.2). One FSServer backs every instance of a function.
type FSServer struct {
	root   *Tree
	nextID int
	grants map[int]Grant
	// writes records append volume per log file, for tests.
	writes map[string]int64
}

// NewFSServer returns a server exporting root.
func NewFSServer(root *Tree) *FSServer {
	return &FSServer{
		root:   root,
		grants: make(map[int]Grant),
		writes: make(map[string]int64),
	}
}

// Root exposes the served tree (read-only by convention).
func (s *FSServer) Root() *Tree { return s.root }

// Open issues a grant for p. Read-write grants are refused unless the
// file is a designated log file.
func (s *FSServer) Open(p string, mode GrantMode) (Grant, error) {
	p = Clean(p)
	f, ok := s.root.Lookup(p)
	if !ok {
		return Grant{}, fmt.Errorf("vfs: fs server: %s: no such file", p)
	}
	if mode == GrantReadWrite && !f.LogFile {
		return Grant{}, fmt.Errorf("vfs: fs server: %s: read-write grant refused (not a log file)", p)
	}
	s.nextID++
	g := Grant{ID: s.nextID, Path: p, Mode: mode}
	s.grants[g.ID] = g
	return g, nil
}

// Close revokes a grant.
func (s *FSServer) Close(id int) error {
	if _, ok := s.grants[id]; !ok {
		return fmt.Errorf("vfs: fs server: close of unknown grant %d", id)
	}
	delete(s.grants, id)
	return nil
}

// Append writes n bytes through a read-write grant.
func (s *FSServer) Append(id int, n int64) error {
	g, ok := s.grants[id]
	if !ok {
		return fmt.Errorf("vfs: fs server: write on unknown grant %d", id)
	}
	if g.Mode != GrantReadWrite {
		return fmt.Errorf("vfs: fs server: write on read-only grant %d (%s)", id, g.Path)
	}
	f, _ := s.root.Lookup(g.Path)
	f.Size += n
	s.root.Add(g.Path, f)
	s.writes[g.Path] += n
	return nil
}

// OpenGrants returns the number of live grants.
func (s *FSServer) OpenGrants() int { return len(s.grants) }

// Written reports bytes appended to a log file.
func (s *FSServer) Written(p string) int64 { return s.writes[Clean(p)] }

// OverlayFS is the stateless overlay rootFS (§4.2): an in-memory upper
// layer, private to a sandbox, over the FS server's read-only lower
// layer. All modifications land in the upper layer, so the whole rootFS
// clones for free during sfork via a map copy (memory CoW in the real
// system).
type OverlayFS struct {
	server  *FSServer
	upper   *Tree
	deleted map[string]bool
}

// NewOverlayFS returns an overlay over server's root.
func NewOverlayFS(server *FSServer) *OverlayFS {
	return &OverlayFS{server: server, upper: NewTree(), deleted: make(map[string]bool)}
}

// Lookup resolves p: upper layer first, then (unless whited-out) lower.
func (o *OverlayFS) Lookup(p string) (File, bool) {
	p = Clean(p)
	if f, ok := o.upper.Lookup(p); ok {
		return f, true
	}
	if o.deleted[p] {
		return File{}, false
	}
	return o.server.Root().Lookup(p)
}

// Write stores a file in the upper layer (copy-up happens implicitly:
// lower files are never modified).
func (o *OverlayFS) Write(p string, f File) {
	p = Clean(p)
	delete(o.deleted, p)
	o.upper.Add(p, f)
}

// Remove whites-out a path.
func (o *OverlayFS) Remove(p string) bool {
	p = Clean(p)
	_, existed := o.Lookup(p)
	if !existed {
		return false
	}
	o.upper.Remove(p)
	o.deleted[p] = true
	return true
}

// UpperLen reports the number of files in the private upper layer.
func (o *OverlayFS) UpperLen() int { return o.upper.Len() }

// Clone produces the child overlay for sfork: same lower layer (the FS
// server is shared per function), copied upper layer.
func (o *OverlayFS) Clone() *OverlayFS {
	c := NewOverlayFS(o.server)
	c.upper = o.upper.Clone()
	for p := range o.deleted {
		c.deleted[p] = true
	}
	return c
}

// Server returns the backing FS server.
func (o *OverlayFS) Server() *FSServer { return o.server }
