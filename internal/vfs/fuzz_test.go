package vfs

import "testing"

// FuzzDecodeMounts hardens the func-image mount section parser.
func FuzzDecodeMounts(f *testing.F) {
	tree := NewTree()
	tree.Add("/a", File{Size: 10, Token: 1})
	tree.Add("/b/c", File{Size: 20, Token: 2, LogFile: true})
	var mt MountTable
	if err := mt.AddMount(Mount{Target: "/", FSType: "rootfs", Tree: tree}); err != nil {
		f.Fatal(err)
	}
	seed := EncodeMounts(CaptureMounts(&mt))
	f.Add(seed)
	f.Add(EncodeMounts(nil))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := DecodeMounts(data)
		if err != nil {
			return
		}
		// Accepted records must re-encode and re-decode stably.
		re := EncodeMounts(records)
		again, err := DecodeMounts(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(records) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}
