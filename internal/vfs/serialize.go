package vfs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Checkpoint serialization for filesystem state: a func-image captures
// the guest's mount table so a restored sandbox resolves the same paths
// without re-walking the host (the mount objects in the kernel graph are
// the metadata; this is the typed view, like tasks for the scheduler).

// TreeRecord is the serialized form of one file.
type TreeRecord struct {
	Path    string
	Size    int64
	Token   uint64
	LogFile bool
}

// CaptureTree snapshots a tree's files in sorted order.
func CaptureTree(t *Tree) []TreeRecord {
	paths := t.Paths()
	out := make([]TreeRecord, 0, len(paths))
	for _, p := range paths {
		f, _ := t.Lookup(p)
		out = append(out, TreeRecord{Path: p, Size: f.Size, Token: f.Token, LogFile: f.LogFile})
	}
	return out
}

// RestoreTree rebuilds a tree from records.
func RestoreTree(records []TreeRecord) *Tree {
	t := NewTree()
	for _, r := range records {
		t.Add(r.Path, File{Size: r.Size, Token: r.Token, LogFile: r.LogFile})
	}
	return t
}

// MountRecord is the serialized form of one mount.
type MountRecord struct {
	Target string
	FSType string
	Files  []TreeRecord
}

// CaptureMounts snapshots a mount table.
func CaptureMounts(mt *MountTable) []MountRecord {
	mounts := mt.Mounts()
	out := make([]MountRecord, 0, len(mounts))
	for _, m := range mounts {
		out = append(out, MountRecord{
			Target: m.Target,
			FSType: m.FSType,
			Files:  CaptureTree(m.Tree),
		})
	}
	return out
}

// RestoreMounts rebuilds a mount table from records.
func RestoreMounts(records []MountRecord) (*MountTable, error) {
	var mt MountTable
	for _, r := range records {
		if err := mt.AddMount(Mount{Target: r.Target, FSType: r.FSType, Tree: RestoreTree(r.Files)}); err != nil {
			return nil, err
		}
	}
	return &mt, nil
}

// EncodeMounts writes mount records in a compact binary form.
func EncodeMounts(records []MountRecord) []byte {
	var buf bytes.Buffer
	writeStr := func(s string) {
		var n [2]byte
		binary.LittleEndian.PutUint16(n[:], uint16(len(s)))
		buf.Write(n[:])
		buf.WriteString(s)
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(records)))
	buf.Write(u32[:])
	for _, m := range records {
		writeStr(m.Target)
		writeStr(m.FSType)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(m.Files)))
		buf.Write(u32[:])
		for _, f := range m.Files {
			writeStr(f.Path)
			var v [17]byte
			binary.LittleEndian.PutUint64(v[0:], uint64(f.Size))
			binary.LittleEndian.PutUint64(v[8:], f.Token)
			if f.LogFile {
				v[16] = 1
			}
			buf.Write(v[:])
		}
	}
	return buf.Bytes()
}

// DecodeMounts parses the binary mount section.
func DecodeMounts(data []byte) ([]MountRecord, error) {
	r := bytes.NewReader(data)
	readStr := func() (string, error) {
		var n [2]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return "", err
		}
		ln := binary.LittleEndian.Uint16(n[:])
		if int(ln) > r.Len() {
			return "", fmt.Errorf("vfs: string length %d exceeds remaining %d", ln, r.Len())
		}
		b := make([]byte, ln)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("vfs: mounts header: %w", err)
	}
	n := binary.LittleEndian.Uint32(u32[:])
	if uint64(n) > uint64(r.Len()) {
		return nil, fmt.Errorf("vfs: declared %d mounts exceeds data", n)
	}
	out := make([]MountRecord, 0, n)
	for i := uint32(0); i < n; i++ {
		var m MountRecord
		var err error
		if m.Target, err = readStr(); err != nil {
			return nil, fmt.Errorf("vfs: mount %d target: %w", i, err)
		}
		if m.FSType, err = readStr(); err != nil {
			return nil, fmt.Errorf("vfs: mount %d fstype: %w", i, err)
		}
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return nil, fmt.Errorf("vfs: mount %d file count: %w", i, err)
		}
		nf := binary.LittleEndian.Uint32(u32[:])
		if uint64(nf)*17 > uint64(r.Len()) {
			return nil, fmt.Errorf("vfs: mount %d declares %d files beyond data", i, nf)
		}
		for j := uint32(0); j < nf; j++ {
			var f TreeRecord
			if f.Path, err = readStr(); err != nil {
				return nil, fmt.Errorf("vfs: mount %d file %d: %w", i, j, err)
			}
			var v [17]byte
			if _, err := io.ReadFull(r, v[:]); err != nil {
				return nil, fmt.Errorf("vfs: mount %d file %d fields: %w", i, j, err)
			}
			f.Size = int64(binary.LittleEndian.Uint64(v[0:]))
			f.Token = binary.LittleEndian.Uint64(v[8:])
			f.LogFile = v[16] == 1
			m.Files = append(m.Files, f)
		}
		out = append(out, m)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("vfs: %d trailing bytes after mounts", r.Len())
	}
	return out, nil
}
