// Package vfs implements the reproduction's filesystem and I/O substrate:
// in-memory file trees, the per-function FS server that grants read-only
// descriptors (§4.2), the stateless overlay rootFS used by sfork, mount
// tables, and the I/O connection table with the three reconnection
// strategies the paper compares (eager re-do, on-demand, and
// I/O-cache-guided, §3.3).
package vfs

import (
	"fmt"
	"path"
	"sort"
	"strings"
)

// File describes one file in a tree. Sizes matter (they drive read costs
// and image sizes); contents are a token so trees stay cheap.
type File struct {
	Size    int64
	Token   uint64
	LogFile bool // eligible for read/write grants from the FS server (§4.2)
}

// Pages returns the number of 4 KiB pages the file spans.
func (f File) Pages() int64 { return (f.Size + 4095) / 4096 }

// Tree is an immutable-by-convention in-memory file tree keyed by cleaned
// absolute paths. The zero value is an empty tree; use NewTree.
type Tree struct {
	files map[string]File
}

// NewTree returns an empty tree.
func NewTree() *Tree { return &Tree{files: make(map[string]File)} }

// Clean normalizes a path to the tree's key form.
func Clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// Add inserts or replaces a file.
func (t *Tree) Add(p string, f File) { t.files[Clean(p)] = f }

// Lookup returns the file at p.
func (t *Tree) Lookup(p string) (File, bool) {
	f, ok := t.files[Clean(p)]
	return f, ok
}

// Remove deletes the file at p, reporting whether it existed.
func (t *Tree) Remove(p string) bool {
	p = Clean(p)
	if _, ok := t.files[p]; !ok {
		return false
	}
	delete(t.files, p)
	return true
}

// Len returns the number of files.
func (t *Tree) Len() int { return len(t.files) }

// TotalBytes sums all file sizes.
func (t *Tree) TotalBytes() int64 {
	var sum int64
	for _, f := range t.files {
		sum += f.Size
	}
	return sum
}

// Paths returns all file paths in sorted order.
func (t *Tree) Paths() []string {
	out := make([]string, 0, len(t.files))
	for p := range t.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the tree.
func (t *Tree) Clone() *Tree {
	c := NewTree()
	for p, f := range t.files {
		c.files[p] = f
	}
	return c
}

// Merge copies every file of other into t, overwriting collisions. It is
// how function-specific binaries are imported into a Zygote's base rootfs
// (§3.4).
func (t *Tree) Merge(other *Tree) {
	for p, f := range other.files {
		t.files[p] = f
	}
}

// Mount is one entry in a sandbox's mount table.
type Mount struct {
	Target string
	FSType string
	Tree   *Tree
}

// MountTable is an ordered list of mounts; later mounts shadow earlier
// ones for path resolution.
type MountTable struct {
	mounts []Mount
}

// AddMount appends a mount.
func (mt *MountTable) AddMount(m Mount) error {
	if m.Tree == nil {
		return fmt.Errorf("vfs: mount %q has nil tree", m.Target)
	}
	m.Target = Clean(m.Target)
	mt.mounts = append(mt.mounts, m)
	return nil
}

// Mounts returns the mount list in mount order.
func (mt *MountTable) Mounts() []Mount {
	out := make([]Mount, len(mt.mounts))
	copy(out, mt.mounts)
	return out
}

// Resolve finds the file at p through the mount table, searching the most
// recent mount whose target prefixes p first.
func (mt *MountTable) Resolve(p string) (File, bool) {
	p = Clean(p)
	for i := len(mt.mounts) - 1; i >= 0; i-- {
		m := mt.mounts[i]
		if !strings.HasPrefix(p, m.Target) && m.Target != "/" {
			continue
		}
		rel := strings.TrimPrefix(p, m.Target)
		if rel == "" {
			rel = "/"
		}
		if f, ok := m.Tree.Lookup(rel); ok {
			return f, true
		}
	}
	return File{}, false
}
