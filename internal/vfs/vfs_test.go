package vfs

import (
	"fmt"
	"testing"
	"testing/quick"

	"catalyzer/internal/costmodel"
	"catalyzer/internal/simenv"
)

func newEnv() *simenv.Env { return simenv.New(costmodel.Default()) }

func TestTreeBasics(t *testing.T) {
	tr := NewTree()
	tr.Add("/etc/app.conf", File{Size: 1000, Token: 1})
	tr.Add("etc/other.conf", File{Size: 500, Token: 2}) // missing leading slash
	tr.Add("/etc/../etc/app.conf", File{Size: 1200, Token: 3})

	f, ok := tr.Lookup("/etc/app.conf")
	if !ok || f.Token != 3 {
		t.Fatalf("Lookup = %+v,%v; want token 3 (path-cleaned overwrite)", f, ok)
	}
	if _, ok := tr.Lookup("/etc/other.conf"); !ok {
		t.Fatal("cleaned add not visible")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if got := tr.TotalBytes(); got != 1700 {
		t.Fatalf("TotalBytes = %d, want 1700", got)
	}
	if !tr.Remove("/etc/other.conf") || tr.Remove("/etc/other.conf") {
		t.Fatal("Remove semantics wrong")
	}
}

func TestFilePages(t *testing.T) {
	cases := []struct {
		size int64
		want int64
	}{{0, 0}, {1, 1}, {4096, 1}, {4097, 2}, {8192, 2}}
	for _, c := range cases {
		if got := (File{Size: c.size}).Pages(); got != c.want {
			t.Errorf("Pages(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestTreeCloneIndependent(t *testing.T) {
	tr := NewTree()
	tr.Add("/a", File{Size: 1})
	c := tr.Clone()
	c.Add("/b", File{Size: 2})
	if _, ok := tr.Lookup("/b"); ok {
		t.Fatal("clone write leaked into original")
	}
}

func TestMountTableShadowing(t *testing.T) {
	base := NewTree()
	base.Add("/bin/app", File{Size: 100, Token: 1})
	app := NewTree()
	app.Add("/app", File{Size: 200, Token: 2})

	var mt MountTable
	if err := mt.AddMount(Mount{Target: "/", FSType: "base", Tree: base}); err != nil {
		t.Fatal(err)
	}
	if err := mt.AddMount(Mount{Target: "/func", FSType: "app", Tree: app}); err != nil {
		t.Fatal(err)
	}
	if f, ok := mt.Resolve("/bin/app"); !ok || f.Token != 1 {
		t.Fatalf("Resolve(/bin/app) = %+v,%v", f, ok)
	}
	if f, ok := mt.Resolve("/func/app"); !ok || f.Token != 2 {
		t.Fatalf("Resolve(/func/app) = %+v,%v", f, ok)
	}
	if _, ok := mt.Resolve("/missing"); ok {
		t.Fatal("Resolve found missing path")
	}
	if err := mt.AddMount(Mount{Target: "/x"}); err == nil {
		t.Fatal("nil tree mount accepted")
	}
}

func TestFSServerGrants(t *testing.T) {
	root := NewTree()
	root.Add("/app/bin", File{Size: 4096})
	root.Add("/var/log/app.log", File{Size: 0, LogFile: true})
	s := NewFSServer(root)

	if _, err := s.Open("/missing", GrantReadOnly); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if _, err := s.Open("/app/bin", GrantReadWrite); err == nil {
		t.Fatal("read-write grant on non-log file succeeded")
	}
	ro, err := s.Open("/app/bin", GrantReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(ro.ID, 10); err == nil {
		t.Fatal("write through read-only grant succeeded")
	}
	rw, err := s.Open("/var/log/app.log", GrantReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rw.ID, 128); err != nil {
		t.Fatal(err)
	}
	if got := s.Written("/var/log/app.log"); got != 128 {
		t.Fatalf("Written = %d, want 128", got)
	}
	if s.OpenGrants() != 2 {
		t.Fatalf("OpenGrants = %d, want 2", s.OpenGrants())
	}
	if err := s.Close(ro.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(ro.ID); err == nil {
		t.Fatal("double close succeeded")
	}
}

func TestOverlayFS(t *testing.T) {
	root := NewTree()
	root.Add("/etc/conf", File{Size: 10, Token: 1})
	o := NewOverlayFS(NewFSServer(root))

	if f, ok := o.Lookup("/etc/conf"); !ok || f.Token != 1 {
		t.Fatalf("lower lookup = %+v,%v", f, ok)
	}
	o.Write("/etc/conf", File{Size: 20, Token: 2})
	if f, _ := o.Lookup("/etc/conf"); f.Token != 2 {
		t.Fatal("upper layer does not shadow lower")
	}
	if f, _ := o.Server().Root().Lookup("/etc/conf"); f.Token != 1 {
		t.Fatal("overlay write mutated lower layer")
	}
	if !o.Remove("/etc/conf") {
		t.Fatal("Remove failed")
	}
	if _, ok := o.Lookup("/etc/conf"); ok {
		t.Fatal("whiteout not effective")
	}
	o.Write("/etc/conf", File{Token: 3})
	if f, ok := o.Lookup("/etc/conf"); !ok || f.Token != 3 {
		t.Fatalf("re-create after whiteout = %+v,%v", f, ok)
	}
}

func TestOverlayCloneIsolation(t *testing.T) {
	root := NewTree()
	root.Add("/data", File{Token: 1})
	parent := NewOverlayFS(NewFSServer(root))
	parent.Write("/tmp/scratch", File{Token: 5})

	child := parent.Clone()
	if f, ok := child.Lookup("/tmp/scratch"); !ok || f.Token != 5 {
		t.Fatal("child does not see parent's upper layer")
	}
	child.Write("/tmp/scratch", File{Token: 9})
	child.Remove("/data")
	if f, _ := parent.Lookup("/tmp/scratch"); f.Token != 5 {
		t.Fatal("child write leaked to parent")
	}
	if _, ok := parent.Lookup("/data"); !ok {
		t.Fatal("child whiteout leaked to parent")
	}
}

func TestConnCaptureOrderStable(t *testing.T) {
	env := newEnv()
	ct := NewConnTable(env)
	ct.Open(ConnFile, "/a")
	b := ct.Open(ConnSocket, "/b")
	ct.Open(ConnFile, "/c")
	if err := ct.Close(b.ID); err != nil {
		t.Fatal(err)
	}
	recs := ct.Capture()
	if len(recs) != 2 || recs[0].Path != "/a" || recs[1].Path != "/c" {
		t.Fatalf("Capture = %+v", recs)
	}
}

func TestRestoreEagerChargesPerConn(t *testing.T) {
	env := newEnv()
	records := []ConnRecord{{ConnFile, "/a"}, {ConnFile, "/b"}, {ConnSocket, "/s"}}
	ct := RestoreEager(env, records)
	if got, want := env.Now(), 3*env.Cost.ConnReconnect; got != want {
		t.Fatalf("eager restore cost = %v, want %v", got, want)
	}
	if ct.PendingCount() != 0 || ct.EagerReconnects != 3 {
		t.Fatalf("eager restore state: pending=%d eager=%d", ct.PendingCount(), ct.EagerReconnects)
	}
}

func TestRestoreLazyDefersCost(t *testing.T) {
	env := newEnv()
	records := []ConnRecord{{ConnFile, "/a"}, {ConnFile, "/b"}}
	ct := RestoreLazy(env, records)
	boot := env.Now()
	if boot >= env.Cost.ConnReconnect {
		t.Fatalf("lazy restore cost %v not below one reconnect", boot)
	}
	if ct.PendingCount() != 2 {
		t.Fatalf("pending = %d, want 2", ct.PendingCount())
	}
	// First use pays; second does not.
	conns := ct.Conns()
	paid, err := ct.Use(conns[0].ID)
	if err != nil || !paid {
		t.Fatalf("first Use = %v,%v", paid, err)
	}
	paid, err = ct.Use(conns[0].ID)
	if err != nil || paid {
		t.Fatalf("second Use = %v,%v", paid, err)
	}
	if ct.LazyReconnects != 1 {
		t.Fatalf("LazyReconnects = %d, want 1", ct.LazyReconnects)
	}
}

func TestRestoreWithCacheSplitsWork(t *testing.T) {
	env := newEnv()
	cache := NewIOCache()
	cache.RecordUse("/hot", false)
	records := []ConnRecord{{ConnFile, "/hot"}, {ConnFile, "/cold1"}, {ConnFile, "/cold2"}}
	ct := RestoreWithCache(env, records, cache)
	if ct.CachedReconnects != 1 {
		t.Fatalf("CachedReconnects = %d, want 1", ct.CachedReconnects)
	}
	if ct.PendingCount() != 2 {
		t.Fatalf("pending = %d, want 2", ct.PendingCount())
	}
	want := env.Cost.ConnReconnectCached + 2*env.Cost.ConnReconnectLazy
	if env.Now() != want {
		t.Fatalf("cost = %v, want %v", env.Now(), want)
	}
}

func TestUseClosedAndUnknown(t *testing.T) {
	env := newEnv()
	ct := NewConnTable(env)
	c := ct.Open(ConnFile, "/x")
	if err := ct.Close(c.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Use(c.ID); err == nil {
		t.Fatal("Use of closed conn succeeded")
	}
	if _, err := ct.Use(999); err == nil {
		t.Fatal("Use of unknown conn succeeded")
	}
	if err := ct.Close(999); err == nil {
		t.Fatal("Close of unknown conn succeeded")
	}
}

func TestIOCacheBytes(t *testing.T) {
	c := NewIOCache()
	c.RecordUse("/etc/nginx/nginx.conf", false)
	c.RecordUse("/etc/nginx/nginx.conf", true) // same path, new op: no new entry
	c.RecordUse("/var/log/access.log", true)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	want := (2 + len("/etc/nginx/nginx.conf") + 1) + (2 + len("/var/log/access.log") + 1)
	if got := c.Bytes(); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
	if !c.Contains("/etc/nginx/nginx.conf") || c.Contains("/nope") {
		t.Fatal("Contains wrong")
	}
}

func TestMountSerializationRoundTrip(t *testing.T) {
	base := NewTree()
	base.Add("/bin/app", File{Size: 100, Token: 1})
	base.Add("/var/log/a.log", File{LogFile: true})
	extra := NewTree()
	extra.Add("/x", File{Size: 5, Token: 3})
	var mt MountTable
	if err := mt.AddMount(Mount{Target: "/", FSType: "rootfs", Tree: base}); err != nil {
		t.Fatal(err)
	}
	if err := mt.AddMount(Mount{Target: "/mnt", FSType: "bind", Tree: extra}); err != nil {
		t.Fatal(err)
	}
	data := EncodeMounts(CaptureMounts(&mt))
	records, err := DecodeMounts(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RestoreMounts(records)
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := got.Resolve("/bin/app"); !ok || f.Token != 1 {
		t.Fatalf("Resolve(/bin/app) = %+v,%v", f, ok)
	}
	if f, ok := got.Resolve("/mnt/x"); !ok || f.Token != 3 {
		t.Fatalf("Resolve(/mnt/x) = %+v,%v", f, ok)
	}
	if f, _ := got.Resolve("/var/log/a.log"); !f.LogFile {
		t.Fatal("log flag lost")
	}
	// Corruption is rejected, not panicked on.
	for _, bad := range [][]byte{{}, data[:len(data)/2], append(append([]byte(nil), data...), 9)} {
		if _, err := DecodeMounts(bad); err == nil {
			t.Fatalf("corrupt mounts (%d bytes) accepted", len(bad))
		}
	}
	// Empty table round-trips.
	empty, err := DecodeMounts(EncodeMounts(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty mounts: %v, %v", empty, err)
	}
}

// Property: lazy restore followed by using every connection costs at least
// as much in total as it saved at boot, and every connection ends open.
func TestLazyReconnectCompletenessProperty(t *testing.T) {
	f := func(n uint8) bool {
		env := newEnv()
		var records []ConnRecord
		for i := 0; i < int(n%50)+1; i++ {
			records = append(records, ConnRecord{ConnFile, Clean(fmt.Sprintf("/f/%d", i))})
		}
		ct := RestoreLazy(env, records)
		for _, c := range ct.Conns() {
			if _, err := ct.Use(c.ID); err != nil {
				return false
			}
		}
		return ct.PendingCount() == 0 && ct.LazyReconnects == len(records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: overlay clone is always isolated from subsequent parent
// mutations and vice versa.
func TestOverlayCloneProperty(t *testing.T) {
	f := func(writes []uint8) bool {
		root := NewTree()
		for i := 0; i < 16; i++ {
			root.Add(Clean(fmt.Sprintf("/f%d", i)), File{Token: uint64(i)})
		}
		parent := NewOverlayFS(NewFSServer(root))
		child := parent.Clone()
		for i, w := range writes {
			p := Clean(fmt.Sprintf("/f%d", int(w)%16))
			if i%2 == 0 {
				parent.Write(p, File{Token: 1000 + uint64(i)})
			} else {
				child.Write(p, File{Token: 2000 + uint64(i)})
			}
		}
		// Child tokens must never be visible in parent and vice versa.
		for i := 0; i < 16; i++ {
			p := Clean(fmt.Sprintf("/f%d", i))
			pf, _ := parent.Lookup(p)
			cf, _ := child.Lookup(p)
			if pf.Token >= 2000 || (cf.Token >= 1000 && cf.Token < 2000) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
