package workload

import (
	"encoding/json"
	"errors"
	"fmt"

	"catalyzer/internal/vfs"
)

// Custom workload support: downstream users describe their own functions
// as JSON documents and register them alongside the built-in evaluation
// workloads. A spec document mirrors the Spec fields plus a compact
// connection description:
//
//	{
//	  "name": "my-fn", "language": "python",
//	  "configKB": 4, "taskImagePages": 2500, "rootMounts": 2,
//	  "initComputeMS": 80, "initSyscalls": 6000, "initMmaps": 900,
//	  "initFiles": 200, "initFilePages": 3000, "initHeapPages": 9000,
//	  "kernelObjects": 12000, "kernelThreads": 30, "kernelTimers": 10,
//	  "conns": {"total": 24, "hot": 16, "sockets": 4},
//	  "execComputeUS": 5000, "execSyscalls": 700, "execPages": 600,
//	  "execConns": 4
//	}

// SpecDoc is the JSON form of a workload spec.
type SpecDoc struct {
	Name           string   `json:"name"`
	Language       Language `json:"language"`
	ConfigKB       int      `json:"configKB"`
	TaskImagePages int      `json:"taskImagePages"`
	RootMounts     int      `json:"rootMounts"`
	InitComputeMS  int      `json:"initComputeMS"`
	InitSyscalls   int      `json:"initSyscalls"`
	InitMmaps      int      `json:"initMmaps"`
	InitFiles      int      `json:"initFiles"`
	InitFilePages  int      `json:"initFilePages"`
	InitHeapPages  int      `json:"initHeapPages"`
	KernelObjects  int      `json:"kernelObjects"`
	KernelThreads  int      `json:"kernelThreads"`
	KernelTimers   int      `json:"kernelTimers"`
	Conns          ConnsDoc `json:"conns"`
	ExecComputeUS  int      `json:"execComputeUS"`
	ExecSyscalls   int      `json:"execSyscalls"`
	ExecPages      int      `json:"execPages"`
	ExecConns      int      `json:"execConns"`
}

// ConnsDoc describes a function's connection set compactly.
type ConnsDoc struct {
	Total   int `json:"total"`
	Hot     int `json:"hot"`
	Sockets int `json:"sockets"`
}

// ParseSpec decodes and validates a JSON workload document.
func ParseSpec(data []byte) (*Spec, error) {
	var d SpecDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("workload: parse spec: %w", err)
	}
	return d.Spec()
}

// Spec materializes the document into a validated Spec.
func (d *SpecDoc) Spec() (*Spec, error) {
	if d.Conns.Hot > d.Conns.Total || d.Conns.Sockets > d.Conns.Total {
		return nil, fmt.Errorf("workload %s: conns hot/sockets exceed total", d.Name)
	}
	prefix := d.Name
	if len(prefix) > 10 {
		prefix = prefix[:10]
	}
	s := &Spec{
		Name:           d.Name,
		Language:       d.Language,
		ConfigKB:       d.ConfigKB,
		TaskImagePages: d.TaskImagePages,
		RootMounts:     d.RootMounts,
		InitComputeMS:  d.InitComputeMS,
		InitSyscalls:   d.InitSyscalls,
		InitMmaps:      d.InitMmaps,
		InitFiles:      d.InitFiles,
		InitFilePages:  d.InitFilePages,
		InitHeapPages:  d.InitHeapPages,
		KernelObjects:  d.KernelObjects,
		KernelThreads:  d.KernelThreads,
		KernelTimers:   d.KernelTimers,
		Conns:          conns(prefix, d.Conns.Total, d.Conns.Hot, d.Conns.Sockets),
		ExecComputeUS:  d.ExecComputeUS,
		ExecSyscalls:   d.ExecSyscalls,
		ExecPages:      d.ExecPages,
		ExecConns:      d.ExecConns,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Doc converts a Spec back to its JSON document form (round-tripping for
// tooling; conn paths collapse to their counts).
func (s *Spec) Doc() *SpecDoc {
	sockets := 0
	for _, c := range s.Conns {
		if c.Kind == vfs.ConnSocket {
			sockets++
		}
	}
	return &SpecDoc{
		Name:           s.Name,
		Language:       s.Language,
		ConfigKB:       s.ConfigKB,
		TaskImagePages: s.TaskImagePages,
		RootMounts:     s.RootMounts,
		InitComputeMS:  s.InitComputeMS,
		InitSyscalls:   s.InitSyscalls,
		InitMmaps:      s.InitMmaps,
		InitFiles:      s.InitFiles,
		InitFilePages:  s.InitFilePages,
		InitHeapPages:  s.InitHeapPages,
		KernelObjects:  s.KernelObjects,
		KernelThreads:  s.KernelThreads,
		KernelTimers:   s.KernelTimers,
		Conns:          ConnsDoc{Total: len(s.Conns), Hot: s.HotConns(), Sockets: sockets},
		ExecComputeUS:  s.ExecComputeUS,
		ExecSyscalls:   s.ExecSyscalls,
		ExecPages:      s.ExecPages,
		ExecConns:      s.ExecConns,
	}
}

// ErrAlreadyRegistered is returned by RegisterCustom when the name is
// taken; callers detect it with errors.Is.
var ErrAlreadyRegistered = errors.New("workload: already registered")

// RegisterCustom adds a user-defined spec to the registry. Built-in
// workload names cannot be overridden.
func RegisterCustom(s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, exists := registry[s.Name]; exists {
		return fmt.Errorf("%w: %q", ErrAlreadyRegistered, s.Name)
	}
	c := *s
	c.Conns = append([]ConnSpec(nil), s.Conns...)
	registry[s.Name] = &c
	return nil
}

// Unregister removes a previously registered custom workload. Built-in
// workloads cannot be removed. It reports whether a custom workload was
// removed.
func Unregister(name string) bool {
	regMu.Lock()
	defer regMu.Unlock()
	if builtins[name] {
		return false
	}
	if _, ok := registry[name]; !ok {
		return false
	}
	delete(registry, name)
	return true
}
