package workload

import (
	"encoding/json"
	"testing"
)

const customDoc = `{
  "name": "my-fn", "language": "python",
  "configKB": 4, "taskImagePages": 2500, "rootMounts": 2,
  "initComputeMS": 80, "initSyscalls": 6000, "initMmaps": 900,
  "initFiles": 200, "initFilePages": 3000, "initHeapPages": 9000,
  "kernelObjects": 12000, "kernelThreads": 30, "kernelTimers": 10,
  "conns": {"total": 24, "hot": 16, "sockets": 4},
  "execComputeUS": 5000, "execSyscalls": 700, "execPages": 600,
  "execConns": 4
}`

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(customDoc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "my-fn" || s.Language != Python {
		t.Fatalf("identity: %+v", s)
	}
	if len(s.Conns) != 24 || s.HotConns() != 16 {
		t.Fatalf("conns: %d/%d", len(s.Conns), s.HotConns())
	}
	sockets := 0
	for _, c := range s.Conns {
		if c.Kind == 1 { // vfs.ConnSocket
			sockets++
		}
	}
	if sockets != 4 {
		t.Fatalf("sockets = %d", sockets)
	}
}

func TestParseSpecErrors(t *testing.T) {
	if _, err := ParseSpec([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseSpec([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("incomplete spec accepted")
	}
	bad := SpecDoc{Name: "x", Language: C, ConfigKB: 4, TaskImagePages: 100,
		KernelObjects: 1000, Conns: ConnsDoc{Total: 2, Hot: 5}}
	if _, err := bad.Spec(); err == nil {
		t.Fatal("hot > total accepted")
	}
}

func TestDocRoundTrip(t *testing.T) {
	orig := MustGet("python-django")
	data, err := json.Marshal(orig.Doc())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.InitHeapPages != orig.InitHeapPages ||
		len(got.Conns) != len(orig.Conns) || got.HotConns() != orig.HotConns() {
		t.Fatalf("round trip diverged: %+v", got)
	}
}

func TestRegisterCustomAndUnregister(t *testing.T) {
	s, err := ParseSpec([]byte(customDoc))
	if err != nil {
		t.Fatal(err)
	}
	s.Name = "custom-test-fn"
	if err := RegisterCustom(s); err != nil {
		t.Fatal(err)
	}
	defer Unregister("custom-test-fn")
	got, err := Registry("custom-test-fn")
	if err != nil {
		t.Fatal(err)
	}
	if got.InitHeapPages != s.InitHeapPages {
		t.Fatal("registered spec differs")
	}
	// Double registration rejected.
	if err := RegisterCustom(s); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	// Built-in collision rejected.
	dup := *s
	dup.Name = "c-hello"
	if err := RegisterCustom(&dup); err == nil {
		t.Fatal("built-in override accepted")
	}
	// Mutating the caller's spec does not affect the registry.
	s.InitComputeMS = 99999
	got2, _ := Registry("custom-test-fn")
	if got2.InitComputeMS == 99999 {
		t.Fatal("registry aliases caller memory")
	}
	if !Unregister("custom-test-fn") {
		t.Fatal("unregister failed")
	}
	if Unregister("custom-test-fn") {
		t.Fatal("double unregister succeeded")
	}
	if Unregister("c-hello") {
		t.Fatal("built-in unregistered")
	}
	if _, err := Registry("c-hello"); err != nil {
		t.Fatal("built-in damaged")
	}
}

func TestRegisterCustomInvalid(t *testing.T) {
	if err := RegisterCustom(&Spec{Name: "bad"}); err == nil {
		t.Fatal("invalid custom spec accepted")
	}
}
