package workload

import "fmt"

// User-guided pre-initialization (§6.7): "a platform can even warm up
// some dependencies of a function with user-provided requests as training
// and use the warmed state as func-image". PreInitVariant derives the
// trained form of a spec: a fraction of the handler's per-request
// preparation work (compute, syscalls, working-set population) moves into
// initialization, where a checkpoint captures it. The c-memread-late and
// java-specjbb-late registry entries are hand-tuned instances of the same
// transformation; this derives it for any function.

// PreInitVariant returns a copy of s with the given fraction (0..1) of
// its execution work captured at initialization time. The derived spec is
// registered under "<name>@pretrained" by PrepareTrained-style callers.
func PreInitVariant(s *Spec, fraction float64) (*Spec, error) {
	if fraction <= 0 || fraction >= 1 {
		return nil, fmt.Errorf("workload: pre-init fraction %.2f outside (0,1)", fraction)
	}
	v := *s
	v.Conns = append([]ConnSpec(nil), s.Conns...)
	v.Name = s.Name + "@pretrained"

	moveInt := func(total int, f float64) (stays, moves int) {
		moves = int(float64(total) * f)
		return total - moves, moves
	}

	// Compute and syscalls issued while warming dependencies happen once
	// at training time instead of per request.
	execCompute, initCompute := moveInt(s.ExecComputeUS, fraction)
	v.ExecComputeUS = execCompute
	v.InitComputeMS = s.InitComputeMS + initCompute/1000
	execSys, initSys := moveInt(s.ExecSyscalls, fraction)
	v.ExecSyscalls = execSys
	v.InitSyscalls = s.InitSyscalls + initSys

	// The warmed working set becomes part of the captured heap: those
	// pages are in the func-image, so execution no longer faults them.
	execPages, warmedPages := moveInt(s.ExecPages, fraction)
	v.ExecPages = execPages
	v.InitHeapPages = s.InitHeapPages + warmedPages

	// Training also surfaces more connections as deterministic: the
	// request-dependent set shrinks.
	execConns, warmedConns := moveInt(s.ExecConns, fraction)
	v.ExecConns = execConns
	hot := 0
	for i := range v.Conns {
		if !v.Conns[i].Hot && warmedConns > 0 {
			v.Conns[i].Hot = true
			warmedConns--
		}
		if v.Conns[i].Hot {
			hot++
		}
	}

	// Warming creates some additional kernel state (loaded modules,
	// cached handles).
	v.KernelObjects = s.KernelObjects + s.ExecSyscalls/10

	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("workload: derived pre-init variant invalid: %w", err)
	}
	return &v, nil
}
