package workload

import (
	"fmt"
	"sort"
	"sync"
)

// Registry returns the named workload spec.
func Registry(name string) (*Spec, error) {
	regMu.RLock()
	s, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
	c := *s
	return &c, nil
}

// MustGet returns the named spec or panics; for experiment tables whose
// workload sets are fixed.
func MustGet(name string) *Spec {
	s, err := Registry(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all registered workload names, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// Workload groups used by the experiment harness.
var (
	// Figure11Workloads are the hello/app pairs of the headline startup
	// figure.
	Figure11Workloads = []string{
		"c-hello", "c-nginx",
		"java-hello", "java-specjbb",
		"python-hello", "python-django",
		"ruby-hello", "ruby-sinatra",
		"nodejs-hello", "nodejs-web",
	}
	// DeathStarWorkloads are the five ported social-network
	// microservices (Figure 13a).
	DeathStarWorkloads = []string{
		"deathstar-text", "deathstar-media", "deathstar-composepost",
		"deathstar-uniqueid", "deathstar-timeline",
	}
	// PillowWorkloads are the five image-processing functions
	// (Figure 13b).
	PillowWorkloads = []string{
		"pillow-enhancement", "pillow-filters", "pillow-rolling",
		"pillow-splitmerge", "pillow-transpose",
	}
	// EcommerceWorkloads are the four Java services (Figure 13c).
	EcommerceWorkloads = []string{
		"ecom-purchase", "ecom-advertisement", "ecom-report", "ecom-discount",
	}
)

// EndToEndWorkloads returns the 14 functions of the Figure 1 CDF.
func EndToEndWorkloads() []string {
	var out []string
	out = append(out, DeathStarWorkloads...)
	out = append(out, PillowWorkloads...)
	out = append(out, EcommerceWorkloads...)
	return out
}

var (
	// regMu guards registry: custom workloads register and unregister at
	// runtime while concurrent invocations look specs up.
	regMu    sync.RWMutex
	registry = map[string]*Spec{}
	builtins = map[string]bool{}
)

func register(s *Spec) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic("workload: duplicate " + s.Name)
	}
	registry[s.Name] = s
	builtins[s.Name] = true
}

// Per-language sandbox-level constants: the wrapper/runtime task image
// (Figure 2's "Load task image" is 19.9 ms for the JVM's ~8000 pages).
const (
	taskImageC      = 400
	taskImageCpp    = 1200
	taskImageJava   = 8000
	taskImagePython = 2500
	taskImageRuby   = 2800
	taskImageNode   = 3500
)

func init() {
	// --- Figure 11: hello + real application per language ---------------

	register(&Spec{
		Name: "c-hello", Language: C,
		ConfigKB: 4, TaskImagePages: taskImageC, RootMounts: 1,
		InitComputeMS: 1, InitSyscalls: 200, InitMmaps: 20, InitFiles: 8,
		InitFilePages: 100, InitHeapPages: 200,
		KernelObjects: 3000, KernelThreads: 10, KernelTimers: 4,
		Conns:         conns("c-hello-fn", 6, 4, 1),
		ExecComputeUS: 300, ExecSyscalls: 40, ExecPages: 40, ExecConns: 2,
	})
	register(&Spec{
		Name: "c-nginx", Language: C,
		ConfigKB: 4, TaskImagePages: taskImageC + 500, RootMounts: 2,
		InitComputeMS: 5, InitSyscalls: 1200, InitMmaps: 100, InitFiles: 30,
		InitFilePages: 800, InitHeapPages: 1200,
		KernelObjects: 9200, KernelThreads: 24, KernelTimers: 10,
		Conns:         conns("nginx-www", 18, 15, 4),
		ExecComputeUS: 900, ExecSyscalls: 150, ExecPages: 150, ExecConns: 3,
	})
	register(&Spec{
		Name: "java-hello", Language: Java,
		ConfigKB: 4, TaskImagePages: taskImageJava, RootMounts: 2,
		InitComputeMS: 70, InitSyscalls: 8000, InitMmaps: 2200, InitFiles: 280,
		InitFilePages: 5000, InitHeapPages: 4000,
		KernelObjects: 20000, KernelThreads: 120, KernelTimers: 30,
		Conns:         conns("java-hello", 30, 20, 3),
		ExecComputeUS: 500, ExecSyscalls: 80, ExecPages: 80, ExecConns: 3,
	})
	register(&Spec{
		// SPECjbb 2015 BackendAgent: the paper's heavyweight Java case.
		// Figure 2: 1850 ms application init in gVisor, 200 MB of app
		// memory, 37,838 guest-kernel objects.
		Name: "java-specjbb", Language: Java,
		ConfigKB: 4, TaskImagePages: taskImageJava, RootMounts: 2,
		InitComputeMS: 400, InitSyscalls: 40000, InitMmaps: 6000, InitFiles: 800,
		InitFilePages: 25000, InitHeapPages: 51200, // 200 MB
		KernelObjects: 37838, KernelThreads: 260, KernelTimers: 120,
		Conns:         conns("specjbb-jv", 100, 96, 8),
		ExecComputeUS: 850000, ExecSyscalls: 30000, ExecPages: 5000, ExecConns: 4,
	})
	register(&Spec{
		Name: "python-hello", Language: Python,
		ConfigKB: 4, TaskImagePages: taskImagePython, RootMounts: 2,
		InitComputeMS: 15, InitSyscalls: 2000, InitMmaps: 250, InitFiles: 80,
		InitFilePages: 1200, InitHeapPages: 900,
		KernelObjects: 9000, KernelThreads: 20, KernelTimers: 8,
		Conns:         conns("py-hello-f", 10, 6, 1),
		ExecComputeUS: 800, ExecSyscalls: 100, ExecPages: 60, ExecConns: 2,
	})
	register(&Spec{
		Name: "python-django", Language: Python,
		ConfigKB: 4, TaskImagePages: taskImagePython, RootMounts: 2,
		InitComputeMS: 150, InitSyscalls: 12000, InitMmaps: 2200, InitFiles: 400,
		InitFilePages: 6000, InitHeapPages: 30000,
		KernelObjects: 16000, KernelThreads: 60, KernelTimers: 20,
		Conns:         conns("django-app", 80, 48, 6),
		ExecComputeUS: 4000, ExecSyscalls: 600, ExecPages: 800, ExecConns: 12,
	})
	register(&Spec{
		Name: "ruby-hello", Language: Ruby,
		ConfigKB: 4, TaskImagePages: taskImageRuby, RootMounts: 2,
		InitComputeMS: 40, InitSyscalls: 5000, InitMmaps: 700, InitFiles: 200,
		InitFilePages: 2500, InitHeapPages: 1800,
		KernelObjects: 11000, KernelThreads: 25, KernelTimers: 10,
		Conns:         conns("rb-hello-f", 12, 8, 1),
		ExecComputeUS: 1200, ExecSyscalls: 120, ExecPages: 100, ExecConns: 3,
	})
	register(&Spec{
		Name: "ruby-sinatra", Language: Ruby,
		ConfigKB: 4, TaskImagePages: taskImageRuby, RootMounts: 2,
		InitComputeMS: 120, InitSyscalls: 9000, InitMmaps: 1400, InitFiles: 350,
		InitFilePages: 5000, InitHeapPages: 12000,
		KernelObjects: 19400, KernelThreads: 60, KernelTimers: 18,
		Conns:         conns("sinatra-rb", 75, 60, 5),
		ExecComputeUS: 3500, ExecSyscalls: 500, ExecPages: 500, ExecConns: 10,
	})
	register(&Spec{
		Name: "nodejs-hello", Language: Node,
		ConfigKB: 4, TaskImagePages: taskImageNode, RootMounts: 2,
		InitComputeMS: 50, InitSyscalls: 4000, InitMmaps: 600, InitFiles: 150,
		InitFilePages: 3000, InitHeapPages: 2500,
		KernelObjects: 10000, KernelThreads: 30, KernelTimers: 12,
		Conns:         conns("js-hello-f", 12, 8, 2),
		ExecComputeUS: 700, ExecSyscalls: 90, ExecPages: 80, ExecConns: 3,
	})
	register(&Spec{
		Name: "nodejs-web", Language: Node,
		ConfigKB: 4, TaskImagePages: taskImageNode, RootMounts: 2,
		InitComputeMS: 90, InitSyscalls: 7000, InitMmaps: 1000, InitFiles: 250,
		InitFilePages: 4500, InitHeapPages: 8000,
		KernelObjects: 16800, KernelThreads: 50, KernelTimers: 16,
		Conns:         conns("nodejs-web", 25, 19, 4),
		ExecComputeUS: 2500, ExecSyscalls: 400, ExecPages: 400, ExecConns: 6,
	})

	// --- Figure 13a: DeathStar social-network microservices (C++) -------
	// Lightweight functions with <2.5 ms execution; startup dominates
	// end-to-end latency in gVisor (35x–67x reduction with sfork).

	deathstar := func(name string, execUS, execSys int) *Spec {
		return &Spec{
			Name: name, Language: Cpp,
			ConfigKB: 4, TaskImagePages: taskImageCpp, RootMounts: 2,
			InitComputeMS: 2, InitSyscalls: 400, InitMmaps: 40, InitFiles: 12,
			InitFilePages: 300, InitHeapPages: 4500,
			KernelObjects: 5200, KernelThreads: 16, KernelTimers: 6,
			Conns:         conns(name[len("deathstar-"):]+"-dsvc", 10, 7, 4),
			ExecComputeUS: execUS, ExecSyscalls: execSys,
			ExecPages: 300, ExecConns: 3,
		}
	}
	register(deathstar("deathstar-text", 1200, 150))
	register(deathstar("deathstar-media", 1800, 220))
	register(deathstar("deathstar-composepost", 2400, 300))
	register(deathstar("deathstar-uniqueid", 800, 90))
	register(deathstar("deathstar-timeline", 2000, 250))

	// --- Figure 13b: Pillow image processing (Python) --------------------
	// 100–200 ms execution (dominated by reading input images), yet
	// startup still dominates end-to-end latency (>500 ms).

	pillow := func(name string, execMS int) *Spec {
		return &Spec{
			Name: name, Language: Python,
			ConfigKB: 4, TaskImagePages: taskImagePython, RootMounts: 2,
			InitComputeMS: 120, InitSyscalls: 9000, InitMmaps: 1600, InitFiles: 500,
			InitFilePages: 9000, InitHeapPages: 15000,
			KernelObjects: 17500, KernelThreads: 40, KernelTimers: 14,
			Conns:         conns(name[len("pillow-"):]+"-img", 30, 20, 2),
			ExecComputeUS: execMS * 1000, ExecSyscalls: 2000,
			ExecPages: 3000, ExecConns: 6,
		}
	}
	register(pillow("pillow-enhancement", 140))
	register(pillow("pillow-filters", 180))
	register(pillow("pillow-rolling", 150))
	register(pillow("pillow-splitmerge", 200))
	register(pillow("pillow-transpose", 120))

	// --- Figure 13c: E-commerce services (Java) --------------------------
	// Booting contributes 34%–88% of end-to-end latency in gVisor; the
	// purchase function is Figure 1's 65.54% execution-ratio maximum.

	register(&Spec{
		Name: "ecom-purchase", Language: Java,
		ConfigKB: 4, TaskImagePages: taskImageJava, RootMounts: 2,
		InitComputeMS: 70, InitSyscalls: 8000, InitMmaps: 2250, InitFiles: 280,
		InitFilePages: 5000, InitHeapPages: 4000,
		KernelObjects: 21000, KernelThreads: 130, KernelTimers: 40,
		Conns:         conns("purchase-j", 60, 40, 10),
		ExecComputeUS: 1150000, ExecSyscalls: 12000, ExecPages: 3000, ExecConns: 18,
	})
	register(&Spec{
		Name: "ecom-advertisement", Language: Java,
		ConfigKB: 4, TaskImagePages: taskImageJava, RootMounts: 2,
		InitComputeMS: 200, InitSyscalls: 30000, InitMmaps: 5500, InitFiles: 500,
		InitFilePages: 15000, InitHeapPages: 20000,
		KernelObjects: 26000, KernelThreads: 180, KernelTimers: 60,
		Conns:         conns("advert-jsv", 70, 50, 12),
		ExecComputeUS: 560000, ExecSyscalls: 8000, ExecPages: 4000, ExecConns: 20,
	})
	register(&Spec{
		Name: "ecom-report", Language: Java,
		ConfigKB: 4, TaskImagePages: taskImageJava, RootMounts: 2,
		InitComputeMS: 380, InitSyscalls: 50000, InitMmaps: 8000, InitFiles: 800,
		InitFilePages: 25000, InitHeapPages: 30000,
		KernelObjects: 32000, KernelThreads: 220, KernelTimers: 80,
		Conns:         conns("report-jsv", 80, 60, 14),
		ExecComputeUS: 260000, ExecSyscalls: 6000, ExecPages: 5000, ExecConns: 20,
	})
	register(&Spec{
		Name: "ecom-discount", Language: Java,
		ConfigKB: 4, TaskImagePages: taskImageJava, RootMounts: 2,
		InitComputeMS: 120, InitSyscalls: 15000, InitMmaps: 3200, InitFiles: 350,
		InitFilePages: 8000, InitHeapPages: 6000,
		KernelObjects: 23000, KernelThreads: 150, KernelTimers: 50,
		Conns:         conns("discount-j", 55, 35, 8),
		ExecComputeUS: 470000, ExecSyscalls: 7000, ExecPages: 2500, ExecConns: 15,
	})

	// --- Figure 16a: fine-grained func-entry point microbenchmarks -------
	// c-memread allocates and initializes a 16 KB region inside the
	// handler; c-memread-late moves the func-entry point after the
	// allocation so the work is captured in the func-image instead.

	register(&Spec{
		Name: "c-memread", Language: C,
		ConfigKB: 4, TaskImagePages: taskImageC, RootMounts: 1,
		InitComputeMS: 1, InitSyscalls: 150, InitMmaps: 15, InitFiles: 6,
		InitFilePages: 80, InitHeapPages: 64,
		KernelObjects: 2800, KernelThreads: 8, KernelTimers: 4,
		Conns:         conns("memread-us", 4, 3, 0),
		ExecComputeUS: 230, ExecSyscalls: 30, ExecPages: 40, ExecConns: 1,
	})
	register(&Spec{
		Name: "c-memread-late", Language: C,
		ConfigKB: 4, TaskImagePages: taskImageC, RootMounts: 1,
		InitComputeMS: 1, InitSyscalls: 180, InitMmaps: 19, InitFiles: 6,
		InitFilePages: 80, InitHeapPages: 108, // the 16 KB region + its setup moved before the entry point
		KernelObjects: 2800, KernelThreads: 8, KernelTimers: 4,
		Conns:         conns("memread-us", 4, 3, 0),
		ExecComputeUS: 90, ExecSyscalls: 8, ExecPages: 4, ExecConns: 1,
	})
	register(&Spec{
		// SPECjbb with the func-entry point moved after its in-function
		// initialization logic (user-guided pre-initialization, §6.7).
		Name: "java-specjbb-late", Language: Java,
		ConfigKB: 4, TaskImagePages: taskImageJava, RootMounts: 2,
		InitComputeMS: 950, InitSyscalls: 60000, InitMmaps: 6000, InitFiles: 800,
		InitFilePages: 25000, InitHeapPages: 56000,
		KernelObjects: 39000, KernelThreads: 270, KernelTimers: 125,
		Conns:         conns("specjbb-jv", 100, 96, 8),
		ExecComputeUS: 283000, ExecSyscalls: 10000, ExecPages: 3000, ExecConns: 4,
	})
}
