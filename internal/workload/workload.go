// Package workload defines the serverless functions of the paper's
// evaluation as *work specifications*: how much computation, how many
// syscalls/mmaps/file loads, how many heap pages, guest-kernel objects and
// I/O connections a function's initialization and execution perform.
// Startup latency in this reproduction is emergent from these quantities
// and the per-operation costs in internal/costmodel — never from a
// per-(system, workload) lookup table.
//
// The registry covers every workload in the paper: the hello/app pairs of
// Figure 11 (C, Java, Python, Ruby, Node.js), the five DeathStar
// microservices (Figure 13a), the five Pillow image-processing functions
// (Figure 13b), the four E-commerce Java services (Figure 13c), and the
// microbenchmarks of Figure 16.
package workload

import (
	"fmt"

	"catalyzer/internal/simtime"
	"catalyzer/internal/vfs"
)

// Language is the implementation language of the wrapped program.
type Language string

const (
	C      Language = "c"
	Cpp    Language = "cpp"
	Java   Language = "java"
	Python Language = "python"
	Ruby   Language = "ruby"
	Node   Language = "nodejs"
)

// ConnSpec describes one I/O connection the function holds at its
// func-entry point.
type ConnSpec struct {
	Kind vfs.ConnKind
	Path string
	// Hot connections are used deterministically right after boot; they
	// populate the I/O cache (§3.3).
	Hot bool
}

// Spec is the complete work specification of one serverless function.
type Spec struct {
	Name     string
	Language Language

	// Sandbox-level inputs.
	ConfigKB       int // OCI configuration size parsed by the gateway
	TaskImagePages int // wrapper/runtime binary pages loaded at sandbox start
	RootMounts     int // filesystem mounts beyond the base rootfs

	// Application initialization (start of wrapped program → func-entry).
	InitComputeMS int // pure CPU initialization (runtime bootstrap, JIT, ...)
	InitSyscalls  int
	InitMmaps     int // address-space manipulations (dominant for managed runtimes)
	InitFiles     int // files opened (libraries, class files)
	InitFilePages int // 4 KiB pages read from those files
	InitHeapPages int // heap pages dirtied during init (the func-image memory section)

	// Guest-kernel population at func-entry.
	KernelObjects int // total objects (§2.2: 37,838 for SPECjbb)
	KernelThreads int
	KernelTimers  int

	Conns []ConnSpec

	// Execution (handler).
	ExecComputeUS int // handler CPU time in microseconds
	ExecSyscalls  int
	ExecPages     int // heap pages touched (a small fraction of init, Insight II)
	// ExecConns is the number of request-dependent (non-deterministic)
	// connections used per request, beyond the hot startup set.
	ExecConns int
}

// Validate checks internal consistency.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if s.Language == "" {
		return fmt.Errorf("workload %s: empty language", s.Name)
	}
	if s.ExecPages > s.InitHeapPages {
		return fmt.Errorf("workload %s: ExecPages %d exceeds InitHeapPages %d (Insight II violated)", s.Name, s.ExecPages, s.InitHeapPages)
	}
	if s.ExecConns > len(s.Conns)-s.HotConns() {
		return fmt.Errorf("workload %s: ExecConns %d exceeds %d non-hot conns", s.Name, s.ExecConns, len(s.Conns)-s.HotConns())
	}
	if s.KernelObjects < s.KernelThreads+s.KernelTimers+6 {
		return fmt.Errorf("workload %s: KernelObjects %d too small for threads+timers", s.Name, s.KernelObjects)
	}
	if s.ConfigKB <= 0 || s.TaskImagePages <= 0 {
		return fmt.Errorf("workload %s: missing sandbox inputs", s.Name)
	}
	return nil
}

// HotConns returns the number of deterministically-used connections.
func (s *Spec) HotConns() int {
	n := 0
	for _, c := range s.Conns {
		if c.Hot {
			n++
		}
	}
	return n
}

// Profile is the per-sandbox-technology cost of the primitive operations
// application initialization performs. Each boot strategy supplies its
// profile (native, Docker, FireCracker, gVisor, ...).
type Profile struct {
	Name     string
	Syscall  simtime.Duration
	Mmap     simtime.Duration
	FileOpen simtime.Duration
	PageRead simtime.Duration
	// HeapDirty is the per-page cost of first-write initialization; page
	// faults are charged separately by the memory subsystem where one
	// exists.
	HeapDirty simtime.Duration
}

// InitCost returns the application-initialization latency of spec under
// the profile, excluding heap dirtying and page faults — those are
// charged page-by-page by the sandbox as it populates the address space,
// at Profile.HeapDirty per page.
func (s *Spec) InitCost(p Profile) simtime.Duration {
	d := simtime.Duration(s.InitComputeMS) * simtime.Millisecond
	d += simtime.Duration(s.InitSyscalls) * p.Syscall
	d += simtime.Duration(s.InitMmaps) * p.Mmap
	d += simtime.Duration(s.InitFiles) * p.FileOpen
	d += simtime.Duration(s.InitFilePages) * p.PageRead
	return d
}

// ExecCost returns the handler's base execution latency under the
// profile: compute plus its syscalls at the profile's per-syscall cost.
// The sandbox execution path dispatches the syscalls individually through
// the guest kernel's syscall layer; this helper predicts the same total
// for planning and assertions.
func (s *Spec) ExecCost(p Profile) simtime.Duration {
	return s.ExecComputeCost() + simtime.Duration(s.ExecSyscalls)*p.Syscall
}

// ExecComputeCost is the handler's pure CPU time.
func (s *Spec) ExecComputeCost() simtime.Duration {
	return simtime.Duration(s.ExecComputeUS) * simtime.Microsecond
}

// conns generates a connection list with ~22-character paths (so the
// serialized I/O cache matches Table 3's per-entry size), marking the
// first hot of them as deterministic-use.
func conns(prefix string, total, hot int, sockets int) []ConnSpec {
	out := make([]ConnSpec, 0, total)
	for i := 0; i < total; i++ {
		kind := vfs.ConnFile
		if i < sockets {
			kind = vfs.ConnSocket
		}
		out = append(out, ConnSpec{
			Kind: kind,
			Path: fmt.Sprintf("/srv/%s/io-%03d", prefix, i),
			Hot:  i < hot,
		})
	}
	return out
}
