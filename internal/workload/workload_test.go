package workload

import (
	"strings"
	"testing"

	"catalyzer/internal/simtime"
)

func TestAllRegisteredSpecsValid(t *testing.T) {
	names := Names()
	if len(names) < 25 {
		t.Fatalf("registry has %d workloads, want >= 25", len(names))
	}
	for _, n := range names {
		s, err := Registry(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestRegistryReturnsCopies(t *testing.T) {
	a := MustGet("c-hello")
	a.InitComputeMS = 99999
	b := MustGet("c-hello")
	if b.InitComputeMS == 99999 {
		t.Fatal("Registry returned shared spec")
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := Registry("no-such-workload"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadGroupsComplete(t *testing.T) {
	if len(Figure11Workloads) != 10 {
		t.Fatalf("Figure 11 has %d workloads, want 10", len(Figure11Workloads))
	}
	if got := len(EndToEndWorkloads()); got != 14 {
		t.Fatalf("end-to-end set has %d functions, want 14 (Figure 1)", got)
	}
	for _, n := range append(Figure11Workloads, EndToEndWorkloads()...) {
		if _, err := Registry(n); err != nil {
			t.Errorf("group references unregistered workload %s", n)
		}
	}
}

func TestValidateCatchesInconsistencies(t *testing.T) {
	base := MustGet("c-hello")
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"empty language", func(s *Spec) { s.Language = "" }},
		{"exec pages exceed heap", func(s *Spec) { s.ExecPages = s.InitHeapPages + 1 }},
		{"exec conns exceed conns", func(s *Spec) { s.ExecConns = len(s.Conns) + 1 }},
		{"too few kernel objects", func(s *Spec) { s.KernelObjects = 1 }},
		{"missing config", func(s *Spec) { s.ConfigKB = 0 }},
	}
	for _, c := range cases {
		s := *base
		s.Conns = append([]ConnSpec(nil), base.Conns...)
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate passed", c.name)
		}
	}
}

func TestInitCostScalesWithProfile(t *testing.T) {
	s := MustGet("java-hello")
	native := Profile{Name: "native", Syscall: 400 * simtime.Nanosecond, Mmap: 2 * simtime.Microsecond,
		FileOpen: 2 * simtime.Microsecond, PageRead: 800 * simtime.Nanosecond, HeapDirty: simtime.Microsecond}
	gvisor := Profile{Name: "gvisor", Syscall: 4 * simtime.Microsecond, Mmap: 150 * simtime.Microsecond,
		FileOpen: 200 * simtime.Microsecond, PageRead: 2500 * simtime.Nanosecond, HeapDirty: simtime.Microsecond}

	n := s.InitCost(native)
	g := s.InitCost(gvisor)
	// Table 2: Java-hello is 89.4 ms native vs 659.1 ms gVisor; app init
	// accounts for the bulk of the gap.
	if n < 70*simtime.Millisecond || n > 110*simtime.Millisecond {
		t.Fatalf("native java-hello init = %v, want ~86ms", n)
	}
	if g < 420*simtime.Millisecond || g > 620*simtime.Millisecond {
		t.Fatalf("gvisor java-hello init = %v, want ~510ms", g)
	}
	if g < 4*n {
		t.Fatalf("gvisor/native init ratio %.1f too small", float64(g)/float64(n))
	}
}

func TestSPECjbbCalibration(t *testing.T) {
	s := MustGet("java-specjbb")
	if s.KernelObjects != 37838 {
		t.Fatalf("SPECjbb kernel objects = %d, want 37838 (§2.2)", s.KernelObjects)
	}
	if got := s.InitHeapPages * 4096 / (1 << 20); got != 200 {
		t.Fatalf("SPECjbb app memory = %d MB, want 200 (§2.2)", got)
	}
	gvisor := Profile{Syscall: 4 * simtime.Microsecond, Mmap: 150 * simtime.Microsecond,
		FileOpen: 200 * simtime.Microsecond, PageRead: 2500 * simtime.Nanosecond, HeapDirty: simtime.Microsecond}
	init := s.InitCost(gvisor)
	// Figure 2: 1850 ms for JVM start + class loading under gVisor.
	if init < 1500*simtime.Millisecond || init > 2200*simtime.Millisecond {
		t.Fatalf("SPECjbb gVisor init = %v, want ~1850ms", init)
	}
}

func TestHotConns(t *testing.T) {
	s := MustGet("java-specjbb")
	if got := s.HotConns(); got != 96 {
		t.Fatalf("SPECjbb hot conns = %d, want 96 (Table 3: 2.4KB I/O cache)", got)
	}
	// Hot conn paths must serialize to ~25 bytes each for Table 3.
	for _, c := range s.Conns[:3] {
		entry := 2 + len(c.Path) + 1
		if entry < 22 || entry > 28 {
			t.Fatalf("conn path %q serializes to %d bytes, want ~25", c.Path, entry)
		}
	}
}

func TestExecCost(t *testing.T) {
	s := MustGet("deathstar-text")
	p := Profile{Syscall: 4 * simtime.Microsecond}
	got := s.ExecCost(p)
	want := 1200*simtime.Microsecond + 150*4*simtime.Microsecond
	if got != want {
		t.Fatalf("ExecCost = %v, want %v", got, want)
	}
	if got > 3*simtime.Millisecond {
		t.Fatal("DeathStar execution must stay under 2.5ms (Figure 13a)")
	}
}

func TestConnPathsUniquePerWorkload(t *testing.T) {
	for _, n := range Names() {
		s := MustGet(n)
		seen := map[string]bool{}
		for _, c := range s.Conns {
			if seen[c.Path] {
				t.Errorf("%s: duplicate conn path %s", n, c.Path)
			}
			seen[c.Path] = true
			if !strings.HasPrefix(c.Path, "/") {
				t.Errorf("%s: relative conn path %s", n, c.Path)
			}
		}
	}
}

func TestLateEntryVariantsShiftWork(t *testing.T) {
	early := MustGet("c-memread")
	late := MustGet("c-memread-late")
	p := Profile{Syscall: 4 * simtime.Microsecond, Mmap: 150 * simtime.Microsecond,
		FileOpen: 200 * simtime.Microsecond, PageRead: 2500 * simtime.Nanosecond, HeapDirty: simtime.Microsecond}
	if late.ExecCost(p) >= early.ExecCost(p) {
		t.Fatal("late entry point did not reduce execution latency")
	}
	if late.InitCost(p) <= early.InitCost(p) {
		t.Fatal("late entry point did not grow captured init work")
	}
	// Figure 16-a: ~3x execution reduction.
	ratio := float64(early.ExecCost(p)) / float64(late.ExecCost(p))
	if ratio < 2 || ratio > 5 {
		t.Fatalf("exec reduction = %.1fx, want ~3x", ratio)
	}
}
