package catalyzer

import (
	"context"
	"testing"

	"catalyzer/internal/simtime"
	"catalyzer/internal/workload"
)

// TestFullLifecycle drives the public API end to end: deploy a custom
// function, serve requests through every Catalyzer path, train a
// pre-initialized variant, absorb a burst, and check the collected
// metrics — the workflow a downstream adopter would run.
func TestFullLifecycle(t *testing.T) {
	const doc = `{
	  "name": "lifecycle-fn", "language": "python",
	  "configKB": 4, "taskImagePages": 2000, "rootMounts": 2,
	  "initComputeMS": 50, "initSyscalls": 4000, "initMmaps": 600,
	  "initFiles": 150, "initFilePages": 2500, "initHeapPages": 8000,
	  "kernelObjects": 11000, "kernelThreads": 28, "kernelTimers": 10,
	  "conns": {"total": 18, "hot": 12, "sockets": 3},
	  "execComputeUS": 20000, "execSyscalls": 900, "execPages": 1200,
	  "execConns": 4
	}`
	c := NewClient()
	name, err := c.DeployCustom(context.Background(), []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer workload.Unregister(name)

	// Serve through every path; boot ordering must hold.
	var fork, warm, cold Duration
	for _, kind := range []BootKind{ForkBoot, WarmBoot, ColdBoot} {
		inv, err := c.Invoke(context.Background(), name, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		switch kind {
		case ForkBoot:
			fork = inv.BootLatency
		case WarmBoot:
			warm = inv.BootLatency
		case ColdBoot:
			cold = inv.BootLatency
		}
	}
	if !(fork < warm && warm < cold) {
		t.Fatalf("ordering: fork=%v warm=%v cold=%v", fork, warm, cold)
	}

	// Train a pre-initialized variant and verify it cuts execution.
	variant, err := c.Train(name, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	defer workload.Unregister(variant)
	base, err := c.Invoke(context.Background(), name, ForkBoot)
	if err != nil {
		t.Fatal(err)
	}
	trained, err := c.Invoke(context.Background(), variant, ForkBoot)
	if err != nil {
		t.Fatal(err)
	}
	if trained.ExecLatency >= base.ExecLatency {
		t.Fatalf("training did not cut execution: %v vs %v", trained.ExecLatency, base.ExecLatency)
	}

	// Burst: 32 simultaneous requests drain fast under fork boot.
	rep, err := c.Burst(context.Background(), name, ForkBoot, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 32 || rep.Cores != 8 {
		t.Fatalf("burst shape: %+v", rep)
	}
	if rep.Makespan > 150*simtime.Millisecond {
		t.Fatalf("burst makespan = %v", rep.Makespan)
	}
	if _, err := c.Burst(context.Background(), name, BootKind("bogus"), 1, 1); err == nil {
		t.Fatal("bogus kind accepted by Burst")
	}

	// Metrics recorded every fork boot (2 invokes + 32 burst requests).
	if got := c.Stats()[ForkBoot].Count; got < 34 {
		t.Fatalf("fork stats count = %d", got)
	}
	// Everything released: only templates and pool state remain.
	if c.Running() > 4 {
		t.Fatalf("running = %d after lifecycle", c.Running())
	}
}

func TestSandboxFootprintMatchesSpec(t *testing.T) {
	c := NewClient()
	if err := c.Deploy(context.Background(), "c-nginx"); err != nil {
		t.Fatal(err)
	}
	inst, err := c.Start(context.Background(), "c-nginx", BaselineGVisor)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Release()
	spec := workload.MustGet("c-nginx")
	want := uint64(spec.TaskImagePages+spec.InitHeapPages) * 4096
	if got := inst.RSS(); got != want {
		t.Fatalf("RSS = %d, want %d (task image + heap)", got, want)
	}
}
