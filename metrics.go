package catalyzer

import (
	"sort"
	"sync"

	"catalyzer/internal/platform"
)

// KindStats summarizes the invocations a client has served with one boot
// kind.
type KindStats struct {
	Count    int
	MeanBoot Duration
	P50Boot  Duration
	P95Boot  Duration
	P99Boot  Duration
	MaxBoot  Duration
}

// statsCollector accumulates per-kind boot metrics inside a Client. It
// has its own mutex so stats never contend with invocation locks.
type statsCollector struct {
	mu     sync.Mutex
	byKind map[BootKind]*platform.Metrics
}

func newStatsCollector() *statsCollector {
	return &statsCollector{byKind: make(map[BootKind]*platform.Metrics)}
}

func (sc *statsCollector) observe(kind BootKind, boot Duration) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	m, ok := sc.byKind[kind]
	if !ok {
		m = platform.NewMetrics(string(kind))
		sc.byKind[kind] = m
	}
	m.ObserveDuration(boot)
}

// snapshot returns the per-kind boot latency distributions collected so
// far (shared by Client.Stats and Fleet.Stats).
func (sc *statsCollector) snapshot() map[BootKind]KindStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make(map[BootKind]KindStats, len(sc.byKind))
	for kind, m := range sc.byKind {
		out[kind] = KindStats{
			Count:    m.Count(),
			MeanBoot: m.Mean(),
			P50Boot:  m.Percentile(50),
			P95Boot:  m.Percentile(95),
			P99Boot:  m.Percentile(99),
			MaxBoot:  m.Max(),
		}
	}
	return out
}

// kinds returns the kinds with recorded invocations, sorted.
func (sc *statsCollector) kinds() []BootKind {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]BootKind, 0, len(sc.byKind))
	for k := range sc.byKind {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns the per-kind boot latency distribution of everything this
// client has served.
func (c *Client) Stats() map[BootKind]KindStats { return c.stats.snapshot() }

// StatsKinds returns the kinds with recorded invocations, sorted.
func (c *Client) StatsKinds() []BootKind { return c.stats.kinds() }
