package catalyzer

import (
	"context"
	"testing"
)

func TestClientStats(t *testing.T) {
	c := NewClient()
	if err := c.Deploy(context.Background(), "c-hello"); err != nil {
		t.Fatal(err)
	}
	if len(c.Stats()) != 0 || len(c.StatsKinds()) != 0 {
		t.Fatal("fresh client has stats")
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(context.Background(), "c-hello", ForkBoot); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Invoke(context.Background(), "c-hello", WarmBoot); err != nil {
		t.Fatal(err)
	}
	inst, err := c.Start(context.Background(), "c-hello", ColdBoot)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Release()

	stats := c.Stats()
	if stats[ForkBoot].Count != 3 {
		t.Fatalf("fork count = %d", stats[ForkBoot].Count)
	}
	if stats[WarmBoot].Count != 1 || stats[ColdBoot].Count != 1 {
		t.Fatalf("warm/cold counts = %d/%d", stats[WarmBoot].Count, stats[ColdBoot].Count)
	}
	// Distribution sanity: fork < warm < cold mean boot.
	if !(stats[ForkBoot].MeanBoot < stats[WarmBoot].MeanBoot &&
		stats[WarmBoot].MeanBoot < stats[ColdBoot].MeanBoot) {
		t.Fatalf("means not ordered: %+v", stats)
	}
	for kind, st := range stats {
		if st.P50Boot > st.P99Boot || st.P99Boot > st.MaxBoot {
			t.Fatalf("%s: percentiles disordered: %+v", kind, st)
		}
	}
	kinds := c.StatsKinds()
	if len(kinds) != 3 {
		t.Fatalf("StatsKinds = %v", kinds)
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatal("StatsKinds not sorted")
		}
	}
}
