package catalyzer

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestOverloadProtectionUnderBurst is the acceptance load test: with a
// global concurrency cap C and a 10×C burst of short-deadline requests,
// every request resolves — success, ErrOverloaded, or
// ErrDeadlineExceeded — nothing hangs, nothing escapes untyped, and no
// instances leak.
func TestOverloadProtectionUnderBurst(t *testing.T) {
	const capC = 4
	c := NewClient(WithAdmission(AdmissionConfig{
		MaxConcurrent: capC,
		QueueDepth:    capC,
	}))
	defer c.Close()
	if err := c.Deploy(context.Background(), "c-hello"); err != nil {
		t.Fatal(err)
	}
	baseline := c.Running() // long-lived artifacts (template sandbox)

	const n = 10 * capC
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
			defer cancel()
			_, err := c.Invoke(ctx, "c-hello", ForkBoot)
			errs[i] = err
		}(i)
	}
	close(start)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("burst did not resolve; requests are hanging past their deadlines")
	}

	var okN, shedN, expiredN, canceledN int
	for i, err := range errs {
		switch {
		case err == nil:
			okN++
		case errors.Is(err, ErrOverloaded):
			shedN++
		case errors.Is(err, ErrDeadlineExceeded):
			expiredN++
		case errors.Is(err, ErrCanceled):
			canceledN++
		default:
			t.Fatalf("request %d: untyped error under overload: %v", i, err)
		}
	}
	if okN == 0 {
		t.Fatal("no request succeeded under the cap")
	}
	if okN+shedN+expiredN+canceledN != n {
		t.Fatalf("outcomes %d+%d+%d+%d do not cover %d requests",
			okN, shedN, expiredN, canceledN, n)
	}

	st := c.OverloadStats()
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("admission not quiescent after burst: %+v", st)
	}
	if st.Admitted < okN {
		t.Fatalf("admitted %d < %d successes", st.Admitted, okN)
	}
	if n := c.Running(); n != baseline {
		t.Fatalf("%d instances leaked (running %d, baseline %d)", n-baseline, n, baseline)
	}
}

// TestIndependentFunctionsOverlapInVirtualTime asserts the concurrency
// win in virtual time: invocations of two independent functions issued
// together share arrival windows, so the burst's virtual makespan
// (last completion − first arrival) is strictly less than the
// serialized sum of their individual latencies.
func TestIndependentFunctionsOverlapInVirtualTime(t *testing.T) {
	// On a single-CPU machine GOMAXPROCS=1 runs each goroutine to
	// completion before the next starts, so no arrival window can ever
	// overlap; give the scheduler room to interleave.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	c := NewClient()
	defer c.Close()
	fns := []string{"c-hello", "java-hello"}
	for _, fn := range fns {
		if err := c.Deploy(context.Background(), fn); err != nil {
			t.Fatal(err)
		}
	}

	const perFn = 8
	// Goroutine scheduling decides how many requests read the clock
	// before the first finishes; retry the experiment rather than flake.
	for attempt := 0; attempt < 5; attempt++ {
		invs := make([]*Invocation, 0, len(fns)*perFn)
		var mu sync.Mutex
		var wg sync.WaitGroup
		start := make(chan struct{})
		for _, fn := range fns {
			for i := 0; i < perFn; i++ {
				wg.Add(1)
				go func(fn string) {
					defer wg.Done()
					<-start
					inv, err := c.Invoke(context.Background(), fn, ForkBoot)
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					invs = append(invs, inv)
					mu.Unlock()
				}(fn)
			}
		}
		close(start)
		wg.Wait()
		if t.Failed() {
			return
		}

		var sum Duration
		minArrival, maxCompletion := invs[0].Arrival, invs[0].Completion
		for _, inv := range invs {
			sum += inv.Total()
			if inv.Arrival < minArrival {
				minArrival = inv.Arrival
			}
			if inv.Completion > maxCompletion {
				maxCompletion = inv.Completion
			}
		}
		if makespan := maxCompletion - minArrival; makespan < sum {
			t.Logf("attempt %d: makespan %v < serialized %v", attempt, makespan, sum)
			return
		}
	}
	t.Fatal("no virtual-time overlap in 5 attempts: concurrent invocations serialized")
}

// TestClientConcurrentStress is the concurrent-hardening regression
// (run under -race in CI): N goroutines over M functions mixing Invoke,
// Start/Release, Refresh, and stats reads while sfork faults fire. The
// invariants: only typed errors escape, no instances leak, and breaker
// state stays coherent.
func TestClientConcurrentStress(t *testing.T) {
	c := NewClient(WithFaultSeed(7), WithAdmission(AdmissionConfig{
		MaxConcurrent: 16,
		QueueDepth:    64,
	}))
	fns := []string{"c-hello", "java-hello", "python-hello"}
	for _, fn := range fns {
		if err := c.Deploy(context.Background(), fn); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.ArmFault("sfork", 0.2); err != nil {
		t.Fatal(err)
	}

	const goroutines, iters = 8, 40
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn := fns[(g+i)%len(fns)]
				switch i % 5 {
				case 0, 1:
					if _, err := c.Invoke(ctx, fn, ForkBoot); err != nil && !typedError(err) {
						t.Errorf("goroutine %d iter %d: untyped Invoke error: %v", g, i, err)
						return
					}
				case 2:
					inst, err := c.Start(ctx, fn, WarmBoot)
					if err != nil {
						if !typedError(err) {
							t.Errorf("goroutine %d iter %d: untyped Start error: %v", g, i, err)
							return
						}
						continue
					}
					if _, err := inst.Execute(); err != nil {
						t.Errorf("goroutine %d iter %d: execute: %v", g, i, err)
					}
					inst.Release()
				case 3:
					if err := c.Refresh(fn); err != nil && !typedError(err) {
						t.Errorf("goroutine %d iter %d: untyped Refresh error: %v", g, i, err)
						return
					}
				case 4:
					c.FailureStats()
					c.Stats()
					c.OverloadStats()
					c.Running()
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	c.DisarmFaults()

	st := c.FailureStats()
	for name, state := range st.Breakers {
		switch state {
		case "closed", "open", "half-open":
		default:
			t.Fatalf("breaker %s in corrupt state %q", name, state)
		}
	}
	ov := c.OverloadStats()
	if ov.InFlight != 0 || ov.QueueDepth != 0 {
		t.Fatalf("admission not quiescent after stress: %+v", ov)
	}
	c.Close()
	if n := c.Running(); n != 0 {
		t.Fatalf("%d instances leaked after stress", n)
	}
}
