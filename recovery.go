package catalyzer

import (
	"context"
	"errors"
	"fmt"

	"catalyzer/internal/admission"
	"catalyzer/internal/costmodel"
	"catalyzer/internal/faults"
	"catalyzer/internal/image"
	"catalyzer/internal/platform"
	"catalyzer/internal/sandbox"
	"catalyzer/internal/supervise"
	"catalyzer/internal/workload"
)

// Typed errors, re-exported so callers branch with errors.Is/As instead
// of matching message text.
var (
	// ErrNotRegistered: the function is unknown (never deployed).
	ErrNotRegistered = platform.ErrNotRegistered
	// ErrNoImage: the boot strategy needs a func-image that has not been
	// prepared.
	ErrNoImage = platform.ErrNoImage
	// ErrNoTemplate: fork boot needs a template sandbox that has not been
	// prepared.
	ErrNoTemplate = platform.ErrNoTemplate
	// ErrUnknownSystem: the requested boot strategy does not exist.
	ErrUnknownSystem = platform.ErrUnknownSystem
	// ErrAlreadyRegistered: DeployCustom hit a name collision.
	ErrAlreadyRegistered = workload.ErrAlreadyRegistered
	// ErrCorruptImage: a stored func-image failed verification (it is
	// quarantined and rebuilt automatically; the sentinel surfaces in
	// wrapped causes).
	ErrCorruptImage = image.ErrCorrupt

	// ErrOverloaded: the request was shed — the admission concurrency
	// caps and queue (WithAdmission) are full, or the drain deadline
	// expired with the request still queued.
	ErrOverloaded = admission.ErrOverloaded
	// ErrDraining: the client is draining and admits nothing new.
	ErrDraining = admission.ErrDraining
	// ErrDeadlineExceeded: the request's context deadline expired —
	// before admission, while queued, or mid-boot between fallback
	// stages. errors.Is also matches context.DeadlineExceeded.
	ErrDeadlineExceeded = admission.ErrDeadlineExceeded
	// ErrCanceled: the request's context was canceled.
	ErrCanceled = admission.ErrCanceled
	// ErrOutOfMemory: a boot did not fit the memory budget even after
	// reclaim (keep-warm eviction, idle-template retirement).
	ErrOutOfMemory = sandbox.ErrOutOfMemory

	// ErrWedged: the instance stopped responding after boot (a liveness
	// probe or an execution found it wedged); the supervisor reaped it.
	ErrWedged = sandbox.ErrWedged
	// ErrPoisoned: the instance inherited latently bad state from its
	// sfork template. Correlated ErrPoisoned failures across one
	// template's children raise the poisoning verdict: the template is
	// quarantined and rebuilt asynchronously while fork boots degrade
	// through the fallback chain.
	ErrPoisoned = sandbox.ErrPoisoned
	// ErrInvocationHung: the execution never returned and the watchdog
	// killed the instance after its kill budget (WatchdogMultiple × the
	// expected execution cost) of virtual time. The admission slot is
	// released.
	ErrInvocationHung = platform.ErrInvocationHung
	// ErrCrashLooping: the function failed too often inside the sliding
	// crash-loop window and is parked with exponential backoff; boots are
	// refused until the park expires.
	ErrCrashLooping = supervise.ErrCrashLooping

	// ErrUnknownFaultSite: ArmFault was given a site name not in
	// FaultSites.
	ErrUnknownFaultSite = errors.New("catalyzer: unknown fault site")
)

// BootError is the typed error Invoke returns when a whole fallback
// chain is exhausted; errors.As(err, &be) recovers the per-stage
// attempts.
type BootError = platform.BootError

// RecoveryConfig tunes the client's failure-recovery machinery; see
// DefaultRecoveryConfig for the defaults.
type RecoveryConfig = platform.RecoveryConfig

// DefaultRecoveryConfig returns the recovery defaults: one retry with
// 200µs base backoff, breakers opening after 3 consecutive failures with
// a 50ms virtual-time cooldown, template quarantine after 3 consecutive
// sfork failures.
func DefaultRecoveryConfig() RecoveryConfig { return platform.DefaultRecoveryConfig() }

// FaultSites lists the fault-injection site names accepted by ArmFault:
// the boot-pipeline sites (image-load, image-decode, base-ept-map,
// metadata-fixup, io-reconnect, sfork, zygote-take), the post-boot
// runtime sites (sandbox-wedge, invoke-hang, template-poison,
// probe-false-negative), and the image store's durability crash points
// (store-write, store-rename, journal-append, manifest-compact), which
// simulate a kill at each point a Save could be interrupted, and the
// machine-granularity fleet sites (machine-crash, machine-partition,
// machine-slow, machine-gray-slow, machine-flaky, hedge-loser-lingers),
// drawn only by a Fleet's control plane — arming them on a
// single-machine client is a no-op. The gray sites are usually armed on
// a single member via Fleet.ArmMachineFault. The fleet-durability sites
// (restart-torn-store, recover-stale-replica, import-write) cover the
// whole-fleet cold-restart path and durable replica pulls:
// restart-torn-store discards one machine's store at Fleet.Recover,
// recover-stale-replica fails one replica's restoration, and
// import-write kills a replica pull before its store save — all three
// are usually armed per machine via ArmMachineFault.
func FaultSites() []string {
	sites := faults.Sites()
	out := make([]string, len(sites))
	for i, s := range sites {
		out[i] = string(s)
	}
	return out
}

// WithFaultSeed installs a deterministic fault injector on the client's
// machine. The seed fully determines the fault schedule: two clients
// with the same seed, the same armings, and the same call sequence see
// identical failures. Without this option ArmFault installs a seed-0
// injector on first use.
func WithFaultSeed(seed int64) Option {
	return func(c *config) {
		s := seed
		c.faultSeed = &s
	}
}

// NewClientWithStore creates a client whose func-images persist in an
// on-disk store rooted at dir: Deploy loads an existing image instead of
// re-running offline initialization, and saves freshly built images.
// Corrupt stored images are quarantined (renamed aside for post-mortem)
// and rebuilt, never silently reused.
func NewClientWithStore(dir string, opts ...Option) (*Client, error) {
	cfg := config{cost: costmodel.Default()}
	for _, o := range opts {
		o(&cfg)
	}
	store, err := image.NewStore(dir)
	if err != nil {
		return nil, err
	}
	c := newClient(cfg)
	p, err := platform.NewWithStoreConfig(cfg.cost, store, platformConfig(cfg))
	if err != nil {
		return nil, err
	}
	c.p = p
	if cfg.faultSeed != nil {
		c.p.InstallFaults(faults.New(*cfg.faultSeed))
	}
	if cfg.memPages > 0 {
		c.p.SetMemoryBudget(cfg.memPages)
	}
	return c, nil
}

// RecoveryReport summarizes one Recover pass: which stored functions
// were rehydrated from the image store and which could not be.
type RecoveryReport struct {
	// Recovered lists the functions re-deployed from their stored
	// func-images, sorted by name.
	Recovered []string
	// Failed maps function names that could not be rehydrated — for
	// example trained variants, whose base workload must be re-Trained —
	// to the formatted failure. Per-function failures never abort the
	// rest of the pass.
	Failed map[string]string
}

// Recover rehydrates the client's function registry from the on-disk
// image store (NewClientWithStore): every function with a live stored
// image is re-deployed, loading its func-image instead of re-running
// offline initialization, so a restarted daemon serves previously
// deployed functions without a fresh Deploy. Functions that cannot be
// rehydrated are reported in the RecoveryReport, not fatal; a client
// without a store recovers nothing. The report is cached for
// RecoveryReport. ctx bounds the whole pass.
func (c *Client) Recover(ctx context.Context) (*RecoveryReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	names, err := c.p.StoredFunctions()
	if err != nil {
		return nil, err
	}
	rep := &RecoveryReport{Failed: make(map[string]string)}
	for _, name := range names {
		if err := c.Deploy(ctx, name); err != nil {
			if admission.CtxErr(ctx) != nil {
				return nil, err // the caller's deadline, not a per-function failure
			}
			rep.Failed[name] = err.Error()
			continue
		}
		rep.Recovered = append(rep.Recovered, name)
	}
	c.recMu.Lock()
	c.lastRecovery = rep
	c.recMu.Unlock()
	return rep, nil
}

// RecoveryReport returns the report of the most recent Recover pass, or
// nil if Recover has not run.
func (c *Client) RecoveryReport() *RecoveryReport {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	return c.lastRecovery
}

// ArmFault arms a fault-injection site with a failure probability in
// [0, 1]; every pass through that boot phase then fails with the given
// probability, drawn from the client's seeded schedule. Unknown site
// names are rejected (see FaultSites).
func (c *Client) ArmFault(site string, rate float64) error {
	if !faults.ValidSite(faults.Site(site)) {
		return fmt.Errorf("%w: %q (known: %v)", ErrUnknownFaultSite, site, FaultSites())
	}
	c.p.ArmFault(faults.Site(site), rate)
	return nil
}

// DisarmFaults disarms every fault site; injection counts are retained
// for FailureStats.
func (c *Client) DisarmFaults() { c.p.DisarmFaults() }

// SetRecoveryConfig replaces the recovery tuning (retries, breakers,
// quarantine thresholds). Existing breaker state is reset.
func (c *Client) SetRecoveryConfig(cfg RecoveryConfig) { c.p.SetRecoveryConfig(cfg) }

// FaultCount reports one injection site's draw/injection totals.
type FaultCount struct {
	Checks   int
	Injected int
}

// FailureStats is everything the failure machinery did on behalf of
// traffic: raw stage failures, fallbacks, retries and their virtual-time
// backoff, circuit-breaker activity, quarantines, and injected-fault
// accounting.
type FailureStats struct {
	// BootFailures counts raw boot-stage failures, keyed by system name.
	BootFailures map[string]int
	// Fallbacks counts boots served by a stage other than the requested
	// one, keyed by the stage that served.
	Fallbacks map[string]int
	// Retries counts same-stage retry attempts; BackoffTotal is the
	// virtual time charged backing off before them.
	Retries      int
	BackoffTotal Duration
	// BreakerTrips counts breaker open transitions; BreakerSkips counts
	// chain stages skipped because their breaker was open.
	BreakerTrips int
	BreakerSkips int
	// TemplatesQuarantined counts template quarantine-and-rebuild events;
	// TemplateRebuildFailures counts rebuilds that themselves failed.
	TemplatesQuarantined    int
	TemplateRebuildFailures int
	// WatchdogKills counts hung invocations killed and reaped by the
	// supervisor's watchdog.
	WatchdogKills int
	// TemplatesPoisoned counts poisoning verdicts (templates convicted by
	// correlated child failures; each also counts in
	// TemplatesQuarantined). TemplateRegens / TemplateRegenFailures count
	// the asynchronous template rebuilds the supervisor ran afterwards.
	TemplatesPoisoned     int
	TemplateRegens        int
	TemplateRegenFailures int
	// ImagesQuarantined counts corrupt stored func-images moved aside;
	// ImageLoadFaults counts store fetches that failed without evidence
	// of corruption.
	ImagesQuarantined int
	ImageLoadFaults   int
	// Rollbacks counts corrupt active generations served from their
	// last-known-good predecessor instead of a synchronous rebuild;
	// ImageRebuilds counts the off-critical-path rebuilds that followed
	// (ImageRebuildFailures the ones that themselves failed).
	Rollbacks            int
	ImageRebuilds        int
	ImageRebuildFailures int
	// ImageSaveFailures counts image persists that failed at a durability
	// boundary; the deploy still succeeds on the in-memory image.
	ImageSaveFailures int
	// Store scrub accounting, from every open of the on-disk image store:
	// OrphansSwept counts abandoned temp/stale generation files removed,
	// ScrubRepaired counts divergences repaired in place (torn journal
	// tails truncated, unjournaled generations adopted), ScrubQuarantined
	// counts files that failed verification and were moved aside.
	OrphansSwept     int
	ScrubRepaired    int
	ScrubQuarantined int
	// Exhausted counts invocations whose whole fallback chain failed.
	Exhausted int
	// Aborted counts invocations whose fallback chain was cut short by
	// the caller's context (deadline or cancellation) mid-chain.
	Aborted int
	// MemoryReclaims counts boots that relieved memory pressure by
	// reclaiming instead of failing; KeepWarmEvictions and
	// TemplatesRetired break down what was freed.
	MemoryReclaims    int
	KeepWarmEvictions int
	TemplatesRetired  int
	// Breakers reports every instantiated circuit breaker's state
	// ("closed", "open", "half-open"), keyed "function/system".
	Breakers map[string]string
	// Faults reports per-site injection totals, keyed by site name.
	Faults map[string]FaultCount
}

// FailureStats returns a snapshot of the client's failure-recovery
// accounting.
func (c *Client) FailureStats() FailureStats {
	st := c.p.FailureStats()
	out := FailureStats{
		BootFailures:            make(map[string]int, len(st.BootFailures)),
		Fallbacks:               make(map[string]int, len(st.Fallbacks)),
		Retries:                 st.Retries,
		BackoffTotal:            st.BackoffTotal,
		BreakerTrips:            st.BreakerTrips,
		BreakerSkips:            st.BreakerSkips,
		TemplatesQuarantined:    st.TemplatesQuarantined,
		TemplateRebuildFailures: st.TemplateRebuildFailures,
		WatchdogKills:           st.WatchdogKills,
		TemplatesPoisoned:       st.TemplatesPoisoned,
		TemplateRegens:          st.TemplateRegens,
		TemplateRegenFailures:   st.TemplateRegenFailures,
		ImagesQuarantined:       st.ImagesQuarantined,
		ImageLoadFaults:         st.ImageLoadFaults,
		Rollbacks:               st.Rollbacks,
		ImageRebuilds:           st.ImageRebuilds,
		ImageRebuildFailures:    st.ImageRebuildFailures,
		ImageSaveFailures:       st.ImageSaveFailures,
		OrphansSwept:            st.OrphansSwept,
		ScrubRepaired:           st.ScrubRepaired,
		ScrubQuarantined:        st.ScrubQuarantined,
		Exhausted:               st.Exhausted,
		Aborted:                 st.Aborted,
		MemoryReclaims:          st.MemoryReclaims,
		KeepWarmEvictions:       st.KeepWarmEvictions,
		TemplatesRetired:        st.TemplatesRetired,
		Breakers:                c.p.BreakerStates(),
		Faults:                  make(map[string]FaultCount),
	}
	for sys, n := range st.BootFailures {
		out.BootFailures[string(sys)] = n
	}
	for sys, n := range st.Fallbacks {
		out.Fallbacks[string(sys)] = n
	}
	for site, fc := range c.p.FaultCounts() {
		out.Faults[string(site)] = FaultCount{Checks: fc.Checks, Injected: fc.Injected}
	}
	return out
}

// SuperviseConfig tunes the client's runtime supervision layer: the
// virtual-time liveness-probe cadence over keep-warm instances,
// template sandboxes and pooled Zygotes; the hung-invocation watchdog
// multiple; the sfork lineage poisoning verdict threshold; and
// crash-loop parking. See DefaultSuperviseConfig for the defaults.
type SuperviseConfig = supervise.Config

// DefaultSuperviseConfig returns the supervision defaults: 100ms probe
// cadence, watchdog kill at 8× the expected execution cost, poisoning
// verdict at 3 distinct failed children, crash-loop parking at 5
// failures inside a 1s window with 100ms..10s exponential backoff.
func DefaultSuperviseConfig() SuperviseConfig { return supervise.DefaultConfig() }

// SuperviseStats is a snapshot of the client's runtime supervision
// accounting.
type SuperviseStats struct {
	// ProbesRun counts probe-group executions; TargetsProbed counts the
	// individual instances those probes inspected.
	ProbesRun     int
	TargetsProbed int
	// WedgedEvicted counts instances a probe found wedged and evicted
	// (keep-warm instances, pooled Zygotes, template sandboxes).
	WedgedEvicted int
	// CrashLoopsParked counts park events; CrashLoopRejects counts boots
	// refused with ErrCrashLooping while parked.
	CrashLoopsParked int
	CrashLoopRejects int
	// ParkedFunctions is the current number of parked functions (gauge).
	ParkedFunctions int
}

// SuperviseStats returns a snapshot of the client's runtime supervision
// accounting.
func (c *Client) SuperviseStats() SuperviseStats {
	st := c.p.SuperviseStats()
	return SuperviseStats{
		ProbesRun:        st.ProbesRun,
		TargetsProbed:    st.TargetsProbed,
		WedgedEvicted:    st.WedgedEvicted,
		CrashLoopsParked: st.CrashLoopsParked,
		CrashLoopRejects: st.CrashLoopRejects,
		ParkedFunctions:  st.ParkedFunctions,
	}
}

// ParkedFunctions lists crash-looping functions currently parked, with
// the remaining virtual park time of each.
func (c *Client) ParkedFunctions() map[string]Duration { return c.p.ParkedFunctions() }

// WaitSupervision blocks until the supervisor's in-flight probes and
// tracked self-healing tasks (template regenerations, Zygote pool
// refills) have finished — the test hook for asserting convergence
// after injected runtime failures.
func (c *Client) WaitSupervision() { c.p.WaitSupervise() }

// Refresh discards a deployed function's in-memory func-image and
// re-prepares it, re-exercising the store load path (including
// quarantine-and-rebuild of corrupt stored images). The template sandbox
// is untouched. Refresh write-locks the function: concurrent invocations
// of the same function wait out the artifact swap, other functions are
// unaffected.
func (c *Client) Refresh(name string) error {
	l := c.fnLock(name)
	l.Lock()
	defer l.Unlock()
	//lint:allow lockdiscipline no-machine-work-under-lock waived: write-held fn lock is the documented artifact-swap exclusion; the reclaim path takes no fn locks
	_, err := c.p.RefreshImage(name)
	return err
}

// Close releases the client's long-lived per-function artifacts (template
// sandboxes, base memory mappings). Deployed functions stay registered;
// re-deploying rebuilds the artifacts. After Close and the release of any
// kept instances, Running reports zero.
func (c *Client) Close() { c.p.Close() }
