package catalyzer

import (
	"context"
	"errors"
	"sync"
	"testing"

	"catalyzer/internal/simtime"
)

// TestPoisonedTemplateContainment is the ISSUE's poisoning acceptance
// test. The template-poison site is armed while the template is built,
// so every sfork child inherits the defect and fails at execution. The
// invariants: the number of poisoned failures never exceeds the verdict
// threshold (the lineage verdict quarantines the template after
// PoisonThreshold distinct failed children), invocations keep succeeding
// while the template is rebuilt asynchronously, and once the rebuild
// lands a fork boot serves non-degraded again. All in virtual time.
func TestPoisonedTemplateContainment(t *testing.T) {
	c := NewClient(WithFaultSeed(11))
	defer c.Close()

	// The poison draw happens at template construction: arm, deploy,
	// disarm. Execution-stage failures afterwards run fault-free, so the
	// async rebuild produces a healthy template.
	if err := c.ArmFault("template-poison", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(context.Background(), "c-hello"); err != nil {
		t.Fatal(err)
	}
	c.DisarmFaults()

	threshold := DefaultSuperviseConfig().PoisonThreshold
	poisoned := 0
	for i := 0; i < threshold; i++ {
		_, err := c.Invoke(context.Background(), "c-hello", ForkBoot)
		if !errors.Is(err, ErrPoisoned) {
			t.Fatalf("invoke %d from poisoned template: err = %v, want ErrPoisoned", i, err)
		}
		poisoned++
	}
	if poisoned > threshold {
		t.Fatalf("poisoned failures = %d, exceeds verdict threshold %d", poisoned, threshold)
	}

	// The verdict has been raised: the template is quarantined and the
	// regen runs in the background. Service continues meanwhile — either
	// a fallback boot (zygote/restore, while the template slot is empty)
	// or a fork from the already-regenerated template; never an error.
	for i := 0; i < 5; i++ {
		inv, err := c.Invoke(context.Background(), "c-hello", ForkBoot)
		if err != nil {
			t.Fatalf("invoke %d after quarantine: %v", i, err)
		}
		if inv.ServedBy == "" {
			t.Fatalf("invoke %d after quarantine missing ServedBy", i)
		}
	}

	// Drain the async rebuild, then a fork boot must serve non-degraded.
	c.WaitSupervision()
	inv, err := c.Invoke(context.Background(), "c-hello", ForkBoot)
	if err != nil {
		t.Fatalf("fork boot after regen: %v", err)
	}
	if inv.ServedBy != ForkBoot {
		t.Fatalf("fork boot after regen degraded: served by %s", inv.ServedBy)
	}

	st := c.FailureStats()
	if st.TemplatesPoisoned != 1 {
		t.Fatalf("TemplatesPoisoned = %d, want 1 (%+v)", st.TemplatesPoisoned, st)
	}
	if st.TemplatesQuarantined == 0 {
		t.Fatalf("poisoning verdict did not quarantine: %+v", st)
	}
	if st.TemplateRegens == 0 {
		t.Fatalf("no async template regen recorded: %+v", st)
	}
}

// TestWatchdogKillReleasesAdmissionSlot is the ISSUE's watchdog
// acceptance test: with a single admission slot and the invoke-hang site
// armed, a hung invocation is killed by the watchdog (not stuck forever),
// its instance reaped, and its admission slot released — so a queued
// invocation proceeds instead of being shed, and a post-recovery
// invocation finds all slots free.
func TestWatchdogKillReleasesAdmissionSlot(t *testing.T) {
	c := NewClient(
		WithFaultSeed(5),
		WithAdmission(AdmissionConfig{MaxConcurrent: 1, QueueDepth: 2}),
	)
	defer c.Close()
	if err := c.Deploy(context.Background(), "c-hello"); err != nil {
		t.Fatal(err)
	}
	if err := c.ArmFault("invoke-hang", 1); err != nil {
		t.Fatal(err)
	}

	// Two concurrent invocations against one slot: one runs, one queues.
	// Both hang and are watchdog-killed; neither is shed with
	// ErrOverloaded, which proves the kill released the slot to the queue.
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Invoke(context.Background(), "c-hello", ForkBoot)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if errors.Is(err, ErrOverloaded) {
			t.Fatalf("invocation %d shed instead of queued: watchdog kill did not release the slot", i)
		}
		if !errors.Is(err, ErrInvocationHung) {
			t.Fatalf("invocation %d: err = %v, want ErrInvocationHung", i, err)
		}
	}

	if st := c.FailureStats(); st.WatchdogKills != 2 {
		t.Fatalf("WatchdogKills = %d, want 2 (%+v)", st.WatchdogKills, st)
	}

	// Slots are fully released: a fault-free invocation is admitted
	// immediately and succeeds.
	c.DisarmFaults()
	if _, err := c.Invoke(context.Background(), "c-hello", ForkBoot); err != nil {
		t.Fatalf("post-recovery invoke: %v", err)
	}
	ov := c.OverloadStats()
	if ov.Admitted != 3 || ov.InFlight != 0 {
		t.Fatalf("overload stats after kills = %+v, want 3 admitted / 0 in flight", ov)
	}
	if got := c.Running(); got != 1 { // the template sandbox stays alive
		t.Fatalf("killed instances not reaped: %d live, want 1 (template only)", got)
	}
}

// TestCrashLoopParksAndRecovers drives a function into a crash loop
// (every execution hangs and is watchdog-killed), asserts the supervisor
// parks it with the typed ErrCrashLooping, and then — once the fault
// clears and the virtual clock moves past the park backoff — the
// function serves again and the park state resets.
func TestCrashLoopParksAndRecovers(t *testing.T) {
	c := NewClient(
		WithFaultSeed(3),
		WithSupervision(SuperviseConfig{
			CrashLoopThreshold: 3,
			CrashLoopWindow:    10 * simtime.Second,
			ParkBase:           10 * simtime.Millisecond,
			ParkMax:            100 * simtime.Millisecond,
		}),
	)
	defer c.Close()
	for _, fn := range []string{"c-hello", "python-hello"} {
		if err := c.Deploy(context.Background(), fn); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.ArmFault("invoke-hang", 1); err != nil {
		t.Fatal(err)
	}

	// Three kills inside the window park the function.
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(context.Background(), "c-hello", ForkBoot); !errors.Is(err, ErrInvocationHung) {
			t.Fatalf("invoke %d: err = %v, want ErrInvocationHung", i, err)
		}
	}
	_, err := c.Invoke(context.Background(), "c-hello", ForkBoot)
	if !errors.Is(err, ErrCrashLooping) {
		t.Fatalf("parked invoke: err = %v, want ErrCrashLooping", err)
	}
	sst := c.SuperviseStats()
	if sst.CrashLoopsParked != 1 || sst.CrashLoopRejects == 0 || sst.ParkedFunctions != 1 {
		t.Fatalf("supervise stats after park = %+v", sst)
	}
	if left, ok := c.ParkedFunctions()["c-hello"]; !ok || left <= 0 {
		t.Fatalf("ParkedFunctions = %v, want c-hello with remaining park time", c.ParkedFunctions())
	}

	// Clear the fault and advance the virtual clock past the park by
	// serving a healthy function. The parked one then recovers.
	c.DisarmFaults()
	for i := 0; i < 100 && len(c.ParkedFunctions()) > 0; i++ {
		if _, err := c.Invoke(context.Background(), "python-hello", ColdBoot); err != nil {
			t.Fatalf("clock-advancing invoke %d: %v", i, err)
		}
	}
	if parked := c.ParkedFunctions(); len(parked) != 0 {
		t.Fatalf("park never expired on the virtual clock: %v", parked)
	}
	if _, err := c.Invoke(context.Background(), "c-hello", ForkBoot); err != nil {
		t.Fatalf("invoke after park expiry: %v", err)
	}
	if got := c.SuperviseStats().ParkedFunctions; got != 0 {
		t.Fatalf("parked gauge after recovery = %d, want 0", got)
	}
}
